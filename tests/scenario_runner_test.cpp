// ScenarioRunner end-to-end: every topology family x traffic pattern
// replays with zero egress divergence, batched results match the scalar
// reference walk packet for packet, thread count never changes the
// counters, and link-failure schedules reroute or drop exactly as the
// degraded topology dictates.

#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "scenario/registry.hpp"

namespace hp::scenario {
namespace {

/// families x patterns; every builtin scenario appears here.
class ScenarioMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(ScenarioMatrix, ReplaysWithIntendedEgressAndScalarParity) {
  const auto& [name, threads] = GetParam();
  const ScenarioSpec* spec = find_scenario(name);
  ASSERT_NE(spec, nullptr) << name;

  BuiltFabric fabric(build_topology(*spec));
  TrafficParams traffic = spec->traffic;
  traffic.packets = 4096;  // matrix-sized, CI-friendly
  PacketStream stream = generate_traffic(fabric, traffic);
  ASSERT_EQ(stream.size(), 4096u);
  EXPECT_EQ(stream.unpackable_pairs, 0u);
  EXPECT_EQ(stream.unreachable_pairs, 0u);

  // Scalar reference: every pair's routeID walks the plain PolkaFabric
  // to the planned egress -- the batched path must agree with this.
  for (const TrafficPair& pair : stream.pairs) {
    const CompiledRoute* route = fabric.route(pair.src, pair.dst);
    ASSERT_NE(route, nullptr);
    const auto trace = fabric.fabric().forward(route->id, route->ingress);
    ASSERT_FALSE(trace.nodes.empty());
    EXPECT_EQ(trace.nodes.back(), pair.expected.egress_node);
    EXPECT_EQ(trace.ports.back(), pair.expected.egress_port);
    EXPECT_EQ(trace.nodes.size(), pair.expected.hops);
    // The intended destination, by construction of the pair.
    EXPECT_EQ(pair.expected.egress_node, fabric.fabric_index(pair.dst));
    EXPECT_EQ(pair.expected.egress_port,
              fabric.egress_port(fabric.fabric_index(pair.dst)));
  }

  RunnerOptions options;
  options.threads = threads;
  options.batch_size = 256;
  const ScenarioReport report = ScenarioRunner(options).run(fabric, stream);
  EXPECT_EQ(report.packets, stream.size());
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_EQ(report.dropped_packets, 0u);
  EXPECT_GT(report.mod_operations, report.packets);  // multi-hop routes
}

std::vector<std::tuple<std::string, unsigned>> matrix_params() {
  std::vector<std::tuple<std::string, unsigned>> params;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    params.emplace_back(spec.name, 1u);
    params.emplace_back(spec.name, 4u);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioMatrix,
                         ::testing::ValuesIn(matrix_params()),
                         [](const auto& param_info) {
                           auto name = std::get<0>(param_info.param);
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name + "_t" +
                                  std::to_string(std::get<1>(param_info.param));
                         });

TEST(ScenarioRunner, ThreadCountDoesNotChangeCounters) {
  const ScenarioSpec* spec = find_scenario("torus4x4/uniform");
  ASSERT_NE(spec, nullptr);
  ScenarioReport reference;
  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    BuiltFabric fabric(build_topology(*spec));
    PacketStream stream = generate_traffic(fabric, spec->traffic);
    RunnerOptions options;
    options.threads = threads;
    const ScenarioReport report = ScenarioRunner(options).run(fabric, stream);
    if (threads == 1) {
      reference = report;
    } else {
      EXPECT_EQ(report.packets, reference.packets) << threads;
      EXPECT_EQ(report.mod_operations, reference.mod_operations) << threads;
      EXPECT_EQ(report.wrong_egress, reference.wrong_egress) << threads;
    }
    EXPECT_EQ(report.wrong_egress, 0u);
  }
}

TEST(ScenarioRunner, LinkFailureReroutesMidRun) {
  // Ring: failing one link forces every pair that crossed it onto the
  // long way round; all packets still reach their destination.
  BuiltFabric fabric(make_ring(8));
  TrafficParams traffic;
  traffic.pattern = TrafficPattern::kPermutation;
  traffic.packets = 4000;
  traffic.seed = 3;
  PacketStream stream = generate_traffic(fabric, traffic);

  RunnerOptions options;
  options.threads = 2;
  options.failures.push_back(
      LinkFailure{0.5, fabric.topology().index_of("r0"),
                  fabric.topology().index_of("r1")});
  const ScenarioReport report = ScenarioRunner(options).run(fabric, stream);
  EXPECT_EQ(report.packets, 4000u);
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_EQ(report.dropped_packets, 0u);
  // The permutation includes neighbours on both sides of the cut, so at
  // least one pair crossed r0-r1 and was recompiled.
  EXPECT_GE(report.rerouted_pairs, 1u);
  // Rerouted packets walk farther than before the failure.
  EXPECT_GT(report.mod_operations, 0u);
}

TEST(ScenarioRunner, DisconnectionDropsRemainingPackets) {
  // Cutting a 4-ring twice isolates {r1, r2} from {r3, r0}: pairs that
  // straddle the cut become unroutable and their remaining packets are
  // dropped, not misdelivered.
  BuiltFabric fabric(make_ring(4));
  TrafficParams traffic;
  traffic.pattern = TrafficPattern::kUniformRandom;
  traffic.packets = 4000;
  traffic.seed = 9;
  PacketStream stream = generate_traffic(fabric, traffic);

  RunnerOptions options;
  const auto r = [&](const char* name) {
    return fabric.topology().index_of(name);
  };
  options.failures.push_back(LinkFailure{0.25, r("r0"), r("r1")});
  options.failures.push_back(LinkFailure{0.25, r("r2"), r("r3")});
  const ScenarioReport report = ScenarioRunner(options).run(fabric, stream);
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_GT(report.dropped_packets, 0u);
  EXPECT_EQ(report.packets + report.dropped_packets, 4000u);
  // Severed pairs are reported explicitly, not just as silent drops.
  EXPECT_GT(report.unroutable_pairs, 0u);
  EXPECT_EQ(report.failover_packets_lost, report.dropped_packets);
  // The pre-failure quarter ran in full, and pairs inside each island
  // kept flowing afterwards.
  EXPECT_GT(report.packets, 1000u);
  EXPECT_LT(report.packets, 4000u);
}

TEST(ScenarioRunner, RegistryRunScenarioOneCall) {
  const ScenarioSpec* spec = find_scenario("fat_tree_k4/hotspot");
  ASSERT_NE(spec, nullptr);
  RunnerOptions options;
  options.threads = 2;
  const ScenarioReport report = run_scenario(*spec, options);
  EXPECT_EQ(report.packets, spec->traffic.packets);
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_GT(report.packets_per_sec(), 0.0);
}

TEST(ScenarioRegistry, CoversEveryFamilyAndPattern) {
  std::set<TopologyFamily> families;
  std::set<TrafficPattern> patterns;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    families.insert(spec.family);
    patterns.insert(spec.traffic.pattern);
    EXPECT_EQ(find_scenario(spec.name), &spec);
  }
  EXPECT_EQ(families.size(), 5u);
  EXPECT_EQ(patterns.size(), 4u);
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(ReplayShards, ValidatesArguments) {
  BuiltFabric fabric(make_ring(4));
  const auto& fast = fabric.compiled();
  std::vector<polka::RouteLabel> labels(4);
  std::vector<std::uint32_t> ingress(3);
  std::vector<std::uint32_t> index(4, 0);
  std::vector<polka::PacketResult> expected(1);
  EXPECT_THROW((void)replay_shards(fast, labels, ingress, index, expected, {},
                                   1, 16),
               std::invalid_argument);
  ingress.resize(4);
  EXPECT_THROW((void)replay_shards(fast, labels, ingress, index, expected, {},
                                   1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hp::scenario
