// Shard-merge schema tests: ScenarioReport partial reports merge by
// summing counters, and SimReport percentiles are recomputed from
// pooled FCT samples -- never by averaging per-shard percentiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "scenario/runner.hpp"
#include "sim/report.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;

namespace {

scenario::ScenarioReport counted(std::size_t base) {
  scenario::ScenarioReport r;
  r.packets = base + 1;
  r.mod_operations = base + 2;
  r.wrong_egress = base + 3;
  r.rerouted_pairs = base + 4;
  r.dropped_packets = base + 5;
  r.ttl_expired = base + 6;
  r.segmented_packets = base + 7;
  r.segment_swaps = base + 8;
  r.seconds = static_cast<double>(base) + 0.5;
  return r;
}

TEST(ScenarioReportMerge, CountersSumAndKernelIsKept) {
  scenario::ScenarioReport merged = counted(100);
  merged.fold_kernel = hp::polka::FoldKernel::kClmulBarrett;
  scenario::ScenarioReport partial = counted(10);
  partial.fold_kernel = hp::polka::FoldKernel::kClmulBarrett;

  merged.merge_from(partial);
  EXPECT_EQ(merged.packets, 112u);
  EXPECT_EQ(merged.mod_operations, 114u);
  EXPECT_EQ(merged.wrong_egress, 116u);
  EXPECT_EQ(merged.rerouted_pairs, 118u);
  EXPECT_EQ(merged.dropped_packets, 120u);
  EXPECT_EQ(merged.ttl_expired, 122u);
  EXPECT_EQ(merged.segmented_packets, 124u);
  EXPECT_EQ(merged.segment_swaps, 126u);
  EXPECT_DOUBLE_EQ(merged.seconds, 111.0);
  EXPECT_EQ(merged.fold_kernel, hp::polka::FoldKernel::kClmulBarrett);
}

TEST(ScenarioReportMerge, MergingDefaultIsIdentity) {
  scenario::ScenarioReport merged = counted(7);
  const scenario::ScenarioReport before = merged;
  merged.merge_from(scenario::ScenarioReport{});
  EXPECT_EQ(merged, before);
}

/// Nearest-rank percentile, independently implemented.
sim::Tick nearest_rank(std::vector<sim::Tick> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

TEST(SimReportMerge, PercentilesAreNearestRank) {
  sim::SimReport report;
  for (sim::Tick v = 1; v <= 20; ++v) report.fct_ns.push_back(21 - v);
  // ceil(0.5 * 20) = 10th order statistic; ceil(0.95 * 20) = 19th.
  EXPECT_EQ(report.fct_p50_ns(), 10u);
  EXPECT_EQ(report.fct_p95_ns(), 19u);

  sim::SimReport empty;
  EXPECT_EQ(empty.fct_p50_ns(), 0u);
  EXPECT_EQ(empty.fct_p95_ns(), 0u);

  sim::SimReport one;
  one.fct_ns = {42};
  EXPECT_EQ(one.fct_p50_ns(), 42u);
  EXPECT_EQ(one.fct_p95_ns(), 42u);
}

TEST(SimReportMerge, P95RecomputedFromPooledSamplesNotAveraged) {
  // Shard A: 19 fast flows + 1 slow; shard B: uniformly slow flows.
  sim::SimReport a;
  for (int i = 0; i < 19; ++i) a.fct_ns.push_back(100);
  a.fct_ns.push_back(10'000);
  a.flows = a.completed_flows = a.fct_ns.size();

  sim::SimReport b;
  for (int i = 0; i < 20; ++i) b.fct_ns.push_back(5'000);
  b.flows = b.completed_flows = b.fct_ns.size();

  const sim::Tick a_p95 = a.fct_p95_ns();
  const sim::Tick b_p95 = b.fct_p95_ns();

  sim::SimReport merged = a;
  merged.merge_from(b);
  ASSERT_EQ(merged.fct_ns.size(), 40u);
  EXPECT_EQ(merged.flows, 40u);
  EXPECT_EQ(merged.completed_flows, 40u);

  std::vector<sim::Tick> pooled = a.fct_ns;
  pooled.insert(pooled.end(), b.fct_ns.begin(), b.fct_ns.end());
  EXPECT_EQ(merged.fct_p95_ns(), nearest_rank(pooled, 0.95));
  EXPECT_EQ(merged.fct_p50_ns(), nearest_rank(pooled, 0.50));

  // The wrong way -- averaging per-shard percentiles -- gives a
  // different (and meaningless) number; pin that they disagree.
  const sim::Tick averaged = (a_p95 + b_p95) / 2;
  EXPECT_NE(merged.fct_p95_ns(), averaged);
}

TEST(SimReportMerge, CountersSumHighWaterMarksMax) {
  sim::SimReport a;
  a.forwarding.packets = 10;
  a.forwarding.dropped_packets = 2;
  a.flows = 4;
  a.completed_flows = 3;
  a.ecn_marked = 5;
  a.max_queue_depth = 7;
  a.max_link_utilization = 0.4;
  a.mean_link_utilization = 0.2;
  a.duration_ns = 1'000;
  a.fct_ns = {10, 20};

  sim::SimReport b;
  b.forwarding.packets = 20;
  b.forwarding.dropped_packets = 1;
  b.flows = 6;
  b.completed_flows = 5;
  b.ecn_marked = 1;
  b.max_queue_depth = 3;
  b.max_link_utilization = 0.9;
  b.mean_link_utilization = 0.5;
  b.duration_ns = 4'000;
  b.fct_ns = {30};

  sim::SimReport merged = a;
  merged.merge_from(b);
  EXPECT_EQ(merged.forwarding.packets, 30u);
  EXPECT_EQ(merged.forwarding.dropped_packets, 3u);
  EXPECT_EQ(merged.flows, 10u);
  EXPECT_EQ(merged.completed_flows, 8u);
  EXPECT_EQ(merged.ecn_marked, 6u);
  EXPECT_EQ(merged.max_queue_depth, 7u);
  EXPECT_DOUBLE_EQ(merged.max_link_utilization, 0.9);
  EXPECT_DOUBLE_EQ(merged.mean_link_utilization, 0.5);
  EXPECT_EQ(merged.duration_ns, 4'000u);
  // Simulated seconds track the merged duration, not the counter sum.
  EXPECT_DOUBLE_EQ(merged.forwarding.seconds, 4e-6);
  EXPECT_EQ(merged.fct_ns, (std::vector<sim::Tick>{10, 20, 30}));
  EXPECT_EQ(merged.drop_rate(), 3.0 / 33.0);
}

TEST(SimReportMerge, ConsumingMergeMatchesCopyingMerge) {
  // The rvalue overload exists so shard joins skip the FCT deep copy;
  // the observable result must be indistinguishable from the copying
  // overload, including when the destination starts empty and adopts
  // the partial's pool wholesale.
  sim::SimReport partial;
  partial.flows = 3;
  partial.completed_flows = 3;
  partial.duration_ns = 2'000;
  partial.fct_ns = {40, 10, 30};

  sim::SimReport copied;
  copied.merge_from(partial);

  sim::SimReport moved;
  moved.merge_from(sim::SimReport{partial});
  EXPECT_EQ(moved, copied);
  EXPECT_EQ(moved.fct_ns, (std::vector<sim::Tick>{40, 10, 30}));

  // Non-empty destination: samples append in partial order.
  sim::SimReport base;
  base.fct_ns = {5};
  sim::SimReport copied2 = base;
  copied2.merge_from(partial);
  sim::SimReport moved2 = base;
  moved2.merge_from(std::move(partial));
  EXPECT_EQ(moved2, copied2);
  EXPECT_EQ(moved2.fct_ns, (std::vector<sim::Tick>{5, 40, 10, 30}));
}

}  // namespace
