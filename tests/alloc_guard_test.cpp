// Dynamic twin of the hp-lint hot-path-purity rule: interposes the
// global allocator in this TU and proves the forwarding hot paths hold
// the zero-allocation contract at runtime, not just textually.
//
//  * CompiledFabric::forward_batch / forward_batch_segmented on a warm
//    fabric perform ZERO heap allocations, for both fold kernels.
//  * replay_shards allocates per *call* (shard partials + batch
//    buffers), never per *packet*: replaying 10x the packets costs
//    exactly the same number of allocations.
//
// The interposer counts every operator-new entry; tests snapshot the
// counter around the call under test and assert on the delta, so
// gtest's own bookkeeping allocations outside the window don't matter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "polka/label.hpp"
#include "scenario/runner.hpp"

namespace {

std::atomic<std::uint64_t> g_new_calls{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

// Strong definitions replace the library operator new for this binary.
void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hp::polka {
namespace {

std::uint64_t alloc_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}

PolkaFabric make_chain(std::size_t n) {
  PolkaFabric fabric(ModEngine::kTable);
  for (std::size_t i = 0; i < n; ++i) {
    fabric.add_node("r" + std::to_string(i), 4);
  }
  for (std::size_t i = 0; i + 1 < n; ++i) fabric.connect(i, 1, i + 1);
  return fabric;
}

std::vector<FoldKernel> testable_kernels() {
  std::vector<FoldKernel> kernels{FoldKernel::kTable};
  if (clmul_fold_supported()) kernels.push_back(FoldKernel::kClmulBarrett);
  return kernels;
}

TEST(AllocGuard, InterposerSeesThisTranslationUnit) {
  const std::uint64_t before = alloc_count();
  auto* leak_free = new int(7);
  delete leak_free;
  std::vector<int> v(128);
  EXPECT_GE(alloc_count() - before, 2u)
      << "operator new interposer is not active; the remaining "
         "assertions would be vacuous";
  static_cast<void>(v);
}

TEST(AllocGuard, ForwardBatchIsZeroAllocationOnWarmFabric) {
  const PolkaFabric fabric = make_chain(12);
  std::vector<std::size_t> path(12);
  for (std::size_t i = 0; i < 12; ++i) path[i] = i;

  std::vector<RouteLabel> labels;
  for (unsigned egress = 0; egress < 4; ++egress) {
    labels.push_back(pack_label_checked(fabric.route_for_path(path, egress)));
  }
  for (int rep = 0; rep < 6; ++rep) {
    labels.insert(labels.end(), labels.begin(), labels.begin() + 4);
  }
  std::vector<PacketResult> results(labels.size());
  std::vector<std::uint32_t> firsts(labels.size(), 0);

  for (const FoldKernel kernel : testable_kernels()) {
    const CompiledFabric fast(fabric, kernel);
    // Warm: kTable builds its fold tables lazily on the first walk.
    (void)fast.forward_batch(labels, 0, std::span<PacketResult>(results));

    const std::uint64_t before = alloc_count();
    const std::size_t mods =
        fast.forward_batch(labels, 0, std::span<PacketResult>(results));
    const std::size_t mods2 = fast.forward_batch(
        labels, std::span<const std::uint32_t>(firsts),
        std::span<PacketResult>(results));
    const std::uint64_t delta = alloc_count() - before;

    EXPECT_EQ(delta, 0u) << "forward_batch allocated under kernel "
                         << to_string(kernel);
    EXPECT_GT(mods, 0u);
    EXPECT_EQ(mods, mods2);
  }
}

TEST(AllocGuard, ForwardBatchSegmentedIsZeroAllocationOnWarmFabric) {
  // A chain long enough that the end-to-end route needs > 1 segment.
  const PolkaFabric fabric = make_chain(24);
  std::vector<std::size_t> path(24);
  for (std::size_t i = 0; i < 24; ++i) path[i] = i;
  const SegmentedRoute segs = fabric.segmented_route_for_path(path, 0U);
  ASSERT_GT(segs.labels.size(), 1u);

  const std::vector<SegmentRef> refs{
      {0, 0, static_cast<std::uint32_t>(segs.labels.size())}};
  const std::vector<std::uint32_t> firsts{0};
  std::vector<PacketResult> results(1);

  const CompiledFabric& fast = fabric.compiled();
  (void)fast.forward_batch_segmented(segs.labels, segs.waypoints, refs,
                                     firsts, results);

  const std::uint64_t before = alloc_count();
  const std::size_t mods = fast.forward_batch_segmented(
      segs.labels, segs.waypoints, refs, firsts, results);
  const std::uint64_t delta = alloc_count() - before;

  EXPECT_EQ(delta, 0u) << "forward_batch_segmented allocated";
  EXPECT_EQ(mods, results[0].hops);
}

TEST(AllocGuard, ReplayAllocationsIndependentOfPacketCount) {
  const PolkaFabric fabric = make_chain(10);
  std::vector<std::size_t> path(10);
  for (std::size_t i = 0; i < 10; ++i) path[i] = i;
  const RouteLabel label = pack_label_checked(fabric.route_for_path(path, 0U));
  const CompiledFabric& fast = fabric.compiled();
  const PacketResult want = fast.forward_one(label, 0);

  const auto replay = [&](std::size_t packets) {
    const std::vector<RouteLabel> labels(packets, label);
    const std::vector<std::uint32_t> ingress(packets, 0);
    const std::vector<std::uint32_t> index(packets, 0);
    const std::vector<PacketResult> expected{want};
    const std::uint64_t before = alloc_count();
    const scenario::ScenarioReport report = scenario::replay_shards(
        fast, labels, ingress, index, expected, /*alive=*/{}, /*threads=*/1,
        /*batch_size=*/256);
    const std::uint64_t delta = alloc_count() - before;
    EXPECT_EQ(report.packets, packets);
    EXPECT_EQ(report.wrong_egress, 0u);
    return delta;
  };

  (void)replay(512);  // warm any lazy state before comparing deltas
  const std::uint64_t small = replay(512);
  const std::uint64_t large = replay(5120);
  EXPECT_EQ(small, large)
      << "replay_shards allocation count scales with packet count -- the "
         "replay_slice hot loop is allocating per packet";
}

}  // namespace
}  // namespace hp::polka
