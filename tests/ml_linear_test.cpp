// Tests for the linear-family regressors.

#include "ml/linear.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ml/metrics.hpp"

namespace hp::ml {
namespace {

/// Noiseless plane y = 2 x0 - 3 x1 + 5.
void make_plane(std::size_t n, Matrix& x, Vector& y, double noise_sd = 0.0,
                std::uint64_t seed = 11) {
  x = Matrix(n, 2);
  y.resize(n);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> value(0.0, 2.0);
  std::normal_distribution<double> noise(0.0, noise_sd);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = value(rng);
    x(i, 1) = value(rng);
    y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 5.0 +
           (noise_sd > 0.0 ? noise(rng) : 0.0);
  }
}

TEST(LinearRegression, RecoversPlaneExactly) {
  Matrix x;
  Vector y;
  make_plane(50, x, y);
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 1e-6);
  EXPECT_NEAR(model.intercept(), 5.0, 1e-6);
  EXPECT_LT(rmse(y, model.predict(x)), 1e-6);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression model;
  EXPECT_THROW((void)model.predict(Matrix{{1.0, 2.0}}), std::logic_error);
}

TEST(LinearRegression, FitArgumentValidation) {
  LinearRegression model;
  EXPECT_THROW(model.fit(Matrix{}, {}), std::invalid_argument);
  EXPECT_THROW(model.fit(Matrix{{1.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Ridge, ShrinksRelativeToOls) {
  Matrix x;
  Vector y;
  make_plane(30, x, y, 0.5);
  LinearRegression ols;
  ols.fit(x, y);
  Ridge heavy(1000.0);
  heavy.fit(x, y);
  EXPECT_LT(std::abs(heavy.coefficients()[0]),
            std::abs(ols.coefficients()[0]));
  EXPECT_LT(std::abs(heavy.coefficients()[1]),
            std::abs(ols.coefficients()[1]));
}

TEST(Lasso, SparsifiesIrrelevantFeature) {
  // y depends on x0 only; a strong L1 penalty must zero the x1 weight.
  std::mt19937_64 rng(3);
  std::normal_distribution<double> value(0.0, 1.0);
  Matrix x(80, 2);
  Vector y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = value(rng);
    x(i, 1) = value(rng);
    y[i] = 4.0 * x(i, 0);
  }
  Lasso model(0.5);
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[1], 0.0, 0.05);
  EXPECT_GT(model.coefficients()[0], 2.0);
}

TEST(Lasso, DefaultAlphaUnderfitsRelativeToOls) {
  // The paper's Fig 6 places Lasso (alpha=1) clearly worse than LR;
  // verify that ordering on correlated features.
  Matrix x;
  Vector y;
  make_plane(60, x, y, 0.2);
  LinearRegression ols;
  ols.fit(x, y);
  Lasso lasso;  // alpha = 1.0 default
  lasso.fit(x, y);
  EXPECT_GT(rmse(y, lasso.predict(x)), rmse(y, ols.predict(x)));
}

TEST(ElasticNet, BetweenLassoAndRidge) {
  Matrix x;
  Vector y;
  make_plane(60, x, y, 0.2);
  ElasticNet net(1.0, 0.5);
  net.fit(x, y);
  // Fits but with shrinkage: coefficients below the true magnitudes.
  EXPECT_LT(std::abs(net.coefficients()[0]), 2.0 + 1e-9);
  EXPECT_LT(std::abs(net.coefficients()[1]), 3.0 + 1e-9);
  EXPECT_GT(std::abs(net.coefficients()[0]), 0.1);
}

TEST(SGDRegressor, ConvergesOnScaledData) {
  Matrix x;
  Vector y;
  make_plane(200, x, y, 0.05);
  SGDRegressor model;
  model.fit(x, y);
  EXPECT_LT(rmse(y, model.predict(x)), 1.0);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.5);
}

TEST(HuberRegressor, RobustToOutliers) {
  Matrix x;
  Vector y;
  make_plane(60, x, y, 0.05);
  // Corrupt a few targets badly.
  y[3] += 200.0;
  y[17] -= 300.0;
  y[42] += 500.0;
  HuberRegressor huber;
  huber.fit(x, y);
  LinearRegression ols;
  ols.fit(x, y);
  // Huber stays near the true slope; OLS is dragged away.
  EXPECT_NEAR(huber.coefficients()[0], 2.0, 0.3);
  EXPECT_GT(std::abs(ols.intercept() - 5.0),
            std::abs(huber.intercept() - 5.0));
}

TEST(RANSACRegressor, IgnoresOutliers) {
  Matrix x;
  Vector y;
  make_plane(80, x, y, 0.01);
  for (std::size_t i = 0; i < 12; ++i) y[i * 6] += 100.0;
  RANSACRegressor ransac;
  ransac.fit(x, y);
  EXPECT_NEAR(ransac.coefficients()[0], 2.0, 0.2);
  EXPECT_NEAR(ransac.coefficients()[1], -3.0, 0.2);
  EXPECT_LT(ransac.inlier_count(), 80U);
  EXPECT_GE(ransac.inlier_count(), 50U);
}

TEST(TheilSenRegressor, MedianRobustness) {
  Matrix x;
  Vector y;
  make_plane(60, x, y, 0.05);
  for (std::size_t i = 0; i < 8; ++i) y[i * 7] -= 150.0;
  TheilSenRegressor model;
  model.fit(x, y);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.4);
  EXPECT_NEAR(model.coefficients()[1], -3.0, 0.4);
}

TEST(ARDRegression, PrunesIrrelevantFeatures) {
  // 6 features, only the first two matter.
  std::mt19937_64 rng(9);
  std::normal_distribution<double> value(0.0, 1.0);
  Matrix x(150, 6);
  Vector y(150);
  for (std::size_t i = 0; i < 150; ++i) {
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = value(rng);
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1) + 0.01 * value(rng);
  }
  ARDRegression ard;
  ard.fit(x, y);
  EXPECT_NEAR(ard.coefficients()[0], 3.0, 0.1);
  EXPECT_NEAR(ard.coefficients()[1], -2.0, 0.1);
  for (std::size_t j = 2; j < 6; ++j) {
    EXPECT_NEAR(ard.coefficients()[j], 0.0, 0.05) << "feature " << j;
  }
}

// Property: every linear model clones to an equivalent untrained model.
class LinearClone : public ::testing::TestWithParam<int> {};

TEST_P(LinearClone, CloneIsIndependentlyTrainable) {
  Matrix x;
  Vector y;
  make_plane(40, x, y, 0.1);
  std::vector<std::unique_ptr<Regressor>> models;
  models.push_back(std::make_unique<LinearRegression>());
  models.push_back(std::make_unique<Ridge>());
  models.push_back(std::make_unique<Lasso>());
  models.push_back(std::make_unique<ElasticNet>());
  models.push_back(std::make_unique<SGDRegressor>());
  models.push_back(std::make_unique<HuberRegressor>());
  models.push_back(std::make_unique<RANSACRegressor>());
  models.push_back(std::make_unique<TheilSenRegressor>());
  models.push_back(std::make_unique<ARDRegression>());
  auto& model = *models[static_cast<std::size_t>(GetParam())];
  auto clone = model.clone();
  model.fit(x, y);
  clone->fit(x, y);
  const Vector a = model.predict(x);
  const Vector b = clone->predict(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Models, LinearClone, ::testing::Range(0, 9));

}  // namespace
}  // namespace hp::ml
