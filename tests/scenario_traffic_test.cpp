// Traffic-matrix generators: stream shape, pattern properties and the
// zero-skip guarantee on the built-in topology sizes.

#include "scenario/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "scenario/topologies.hpp"

namespace hp::scenario {
namespace {

TrafficParams params_for(TrafficPattern pattern, std::size_t packets = 2000) {
  TrafficParams params;
  params.pattern = pattern;
  params.packets = packets;
  params.seed = 5;
  return params;
}

class TrafficPatterns : public ::testing::TestWithParam<TrafficPattern> {};

TEST_P(TrafficPatterns, StreamShapeIsConsistent) {
  BuiltFabric fabric(make_torus(4, 4));
  const PacketStream stream =
      generate_traffic(fabric, params_for(GetParam()));
  EXPECT_EQ(stream.size(), 2000u);
  EXPECT_EQ(stream.ingress.size(), stream.size());
  EXPECT_EQ(stream.pair.size(), stream.size());
  EXPECT_EQ(stream.unpackable_pairs, 0u);
  EXPECT_EQ(stream.unreachable_pairs, 0u);
  ASSERT_FALSE(stream.pairs.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_LT(stream.pair[i], stream.pairs.size());
    const TrafficPair& pair = stream.pairs[stream.pair[i]];
    EXPECT_NE(pair.src, pair.dst);
    // The packet is injected at its pair's source router.
    EXPECT_EQ(stream.ingress[i], fabric.fabric_index(pair.src));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, TrafficPatterns,
    ::testing::Values(TrafficPattern::kUniformRandom,
                      TrafficPattern::kPermutation, TrafficPattern::kHotspot,
                      TrafficPattern::kElephantMice),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(Traffic, PermutationGivesEachRouterOnePartner) {
  BuiltFabric fabric(make_ring(10));
  const PacketStream stream =
      generate_traffic(fabric, params_for(TrafficPattern::kPermutation));
  EXPECT_EQ(stream.pairs.size(), 10u);  // one pair per router
  std::set<netsim::NodeIndex> sources;
  std::set<netsim::NodeIndex> destinations;
  for (const TrafficPair& pair : stream.pairs) {
    EXPECT_TRUE(sources.insert(pair.src).second) << "duplicate source";
    EXPECT_TRUE(destinations.insert(pair.dst).second) << "duplicate dest";
  }
}

TEST(Traffic, HotspotConcentratesOnOneDestination) {
  BuiltFabric fabric(make_leaf_spine(3, 6));
  TrafficParams params = params_for(TrafficPattern::kHotspot, 4000);
  params.hotspot_weight = 0.7;
  const PacketStream stream = generate_traffic(fabric, params);
  std::map<netsim::NodeIndex, std::size_t> per_dst;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    per_dst[stream.pairs[stream.pair[i]].dst] += 1;
  }
  std::size_t hottest = 0;
  for (const auto& [dst, count] : per_dst) hottest = std::max(hottest, count);
  // The hot destination should carry roughly hotspot_weight of traffic.
  EXPECT_GT(hottest, stream.size() / 2);
  EXPECT_LT(hottest, stream.size());  // but not all of it
}

TEST(Traffic, ElephantMiceMixesFlowSizes) {
  BuiltFabric fabric(make_fat_tree(4));
  TrafficParams params = params_for(TrafficPattern::kElephantMice, 5000);
  params.workload.duration_s = 60.0;
  params.workload.arrival_rate_per_s = 2.0;
  // Small mice (median ~50 KB => tens of packets) against elephants
  // that hit the per-flow cap, so run lengths spread widely.
  params.workload.mice_log_mean = -3.0;
  const PacketStream stream = generate_traffic(fabric, params);
  EXPECT_EQ(stream.size(), 5000u);  // budget filled exactly
  // Flow structure shows as runs of identical pairs with very different
  // lengths (mice ~ a few packets, elephants hit the per-flow cap).
  std::vector<std::size_t> run_lengths;
  std::size_t run = 1;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    if (stream.pair[i] == stream.pair[i - 1]) {
      ++run;
    } else {
      run_lengths.push_back(run);
      run = 1;
    }
  }
  run_lengths.push_back(run);
  ASSERT_GT(run_lengths.size(), 1u);
  const auto [min_it, max_it] =
      std::minmax_element(run_lengths.begin(), run_lengths.end());
  EXPECT_GT(*max_it, 4u * *min_it);  // heavy-tailed mix
}

TEST(Traffic, DeterministicInSeed) {
  BuiltFabric fabric_a(make_random_regular(16, 4, 3));
  BuiltFabric fabric_b(make_random_regular(16, 4, 3));
  const auto params = params_for(TrafficPattern::kUniformRandom, 500);
  const PacketStream a = generate_traffic(fabric_a, params);
  const PacketStream b = generate_traffic(fabric_b, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.labels[i], b.labels[i]);
    EXPECT_EQ(a.ingress[i], b.ingress[i]);
  }
}

TEST(Traffic, ValidatesParameters) {
  BuiltFabric fabric(make_ring(4));
  TrafficParams params;
  params.packets = 0;
  EXPECT_THROW((void)generate_traffic(fabric, params), std::invalid_argument);
  BuiltFabric lonely(make_leaf_spine(1, 1));  // 2 routers is the minimum
  params.packets = 10;
  EXPECT_NO_THROW((void)generate_traffic(lonely, params));
}

}  // namespace
}  // namespace hp::scenario
