// Tests for the framework extensions: automatic model selection
// (fit_auto) and LP-based flow splitting in the Controller.

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.hpp"

namespace hp::core {
namespace {

using hp::freertr::parse_ipv4;

TEST(FitAuto, PicksLowHoldoutRmseModel) {
  HecateConfig config;
  config.history = 5;
  HecateService hecate(config);
  // A clean linear ramp: linear-family models win the holdout easily
  // against trees (which extrapolate poorly beyond the training range).
  std::vector<double> ramp(200);
  for (std::size_t i = 0; i < 200; ++i) ramp[i] = static_cast<double>(i);
  hecate.load_series("ramp", ramp);
  const std::string chosen =
      hecate.fit_auto("ramp", {"LR", "DTR", "RFR"});
  EXPECT_EQ(chosen, "LR");
  EXPECT_EQ(hecate.model_of("ramp"), "LR");
  EXPECT_TRUE(hecate.is_trained("ramp"));
  // Forecast extrapolates the ramp.
  const auto forecast = hecate.forecast("ramp", 3);
  EXPECT_NEAR(forecast[0], 200.0, 2.0);
}

TEST(FitAuto, DefaultCandidatesAreTheCatalog) {
  HecateConfig config;
  config.history = 5;
  HecateService hecate(config);
  std::vector<double> series(120);
  for (std::size_t i = 0; i < 120; ++i) {
    series[i] = 10.0 + 3.0 * std::sin(static_cast<double>(i) * 0.3);
  }
  hecate.load_series("s", series);
  const std::string chosen = hecate.fit_auto("s");
  EXPECT_FALSE(chosen.empty());
  EXPECT_EQ(hecate.model_of("s"), chosen);
}

TEST(FitAuto, ThinSeriesRejected) {
  HecateService hecate;
  hecate.load_series("thin", std::vector<double>(20, 1.0));
  EXPECT_THROW((void)hecate.fit_auto("thin"), std::runtime_error);
  EXPECT_EQ(hecate.model_of("thin"), "");
}

FlowRequest split_request(double demand) {
  FlowRequest request;
  request.name = "bulk";
  request.acl_name = "bulk";
  request.src_ip = parse_ipv4("40.40.1.2");
  request.dst_ip = parse_ipv4("40.40.2.2");
  request.tos = 1;
  request.demand_mbps = demand;
  return request;
}

TEST(SplitFlow, BalancesUtilizationAcrossTunnels) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  // 28 Mbps over bottlenecks {20, 10, 5}: LP gives 16/8/4 (0.8 each).
  const auto indices = runtime.controller().split_flow(split_request(28.0),
                                                       0.0);
  ASSERT_EQ(indices.size(), 3U);
  sim.run_until(10.0);
  const double rates[3] = {
      sim.current_rate(runtime.controller().managed(indices[0]).sim_flow),
      sim.current_rate(runtime.controller().managed(indices[1]).sim_flow),
      sim.current_rate(runtime.controller().managed(indices[2]).sim_flow)};
  EXPECT_NEAR(rates[0], 16.0, 1e-6);
  EXPECT_NEAR(rates[1], 8.0, 1e-6);
  EXPECT_NEAR(rates[2], 4.0, 1e-6);
  // Subflows landed on three distinct tunnels with their own ACLs.
  EXPECT_NE(runtime.edge().config().find_pbr("bulk.0"), nullptr);
  EXPECT_NE(runtime.edge().config().find_pbr("bulk.2"), nullptr);
}

TEST(SplitFlow, SmallDemandMaySkipTunnels) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  // A tiny demand is served by a subset; total must still match.
  const auto indices =
      runtime.controller().split_flow(split_request(3.0), 0.0);
  runtime.simulator().run_until(5.0);
  double total = 0.0;
  for (const auto i : indices) {
    total += runtime.simulator().current_rate(
        runtime.controller().managed(i).sim_flow);
  }
  EXPECT_NEAR(total, 3.0, 1e-6);
}

TEST(SplitFlow, AvoidsDownTunnels) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  const auto& topo = sim.topology();
  sim.fail_link(0.0, *topo.link_between(topo.index_of("MIA"),
                                        topo.index_of("SAO")));
  sim.run_until(1.0);
  // Only tunnels 2 (10) and 3 (5) remain: 12 Mbps fits, split 8/4.
  const auto indices =
      runtime.controller().split_flow(split_request(12.0), 1.0);
  ASSERT_EQ(indices.size(), 2U);
  for (const auto i : indices) {
    EXPECT_NE(runtime.controller().managed(i).tunnel_id, 1U);
  }
}

TEST(PlanTunnels, DerivesThePaperTunnelsAutomatically) {
  const auto topo = hp::netsim::make_global_p4_lab();
  const auto plans =
      FrameworkRuntime::plan_tunnels(topo, "host1", "host2", 3);
  ASSERT_EQ(plans.size(), 3U);
  // Delay-ordered: MIA-CHI-AMS, MIA-CAL-CHI-AMS, MIA-SAO-AMS.
  EXPECT_EQ(plans[0].routers,
            (std::vector<std::string>{"MIA", "CHI", "AMS"}));
  EXPECT_EQ(plans[1].routers,
            (std::vector<std::string>{"MIA", "CAL", "CHI", "AMS"}));
  EXPECT_EQ(plans[2].routers,
            (std::vector<std::string>{"MIA", "SAO", "AMS"}));
  EXPECT_EQ(plans[0].id, 1U);
  EXPECT_EQ(plans[2].egress_host, "host2");
}

TEST(PlanTunnels, PlansBuildAWorkingRuntime) {
  auto topo = hp::netsim::make_global_p4_lab();
  auto plans = FrameworkRuntime::plan_tunnels(topo, "host1", "host2", 3);
  FrameworkRuntime runtime(std::move(topo), std::move(plans));
  // All three tunnels verified at construction; latency objective picks
  // the CHI tunnel, which plan_tunnels put first (id 1).
  EXPECT_EQ(runtime.controller().choose_tunnel(Objective::kMinLatency), 1U);
  const auto index = runtime.controller().handle_new_flow(
      split_request(5.0), 0.0, Objective::kMinLatency);
  runtime.simulator().run_until(5.0);
  EXPECT_NEAR(runtime.simulator().current_rate(
                  runtime.controller().managed(index).sim_flow),
              5.0, 1e-6);
}

TEST(PlanTunnels, NoPathThrows) {
  hp::netsim::Topology topo;
  topo.add_node("h1", hp::netsim::NodeKind::kHost);
  topo.add_node("h2", hp::netsim::NodeKind::kHost);
  EXPECT_THROW(
      (void)FrameworkRuntime::plan_tunnels(topo, "h1", "h2", 2),
      std::invalid_argument);
}

TEST(SplitFlow, Validation) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  EXPECT_THROW((void)runtime.controller().split_flow(
                   split_request(std::numeric_limits<double>::infinity()),
                   0.0),
               std::invalid_argument);
  // Over total capacity (20+10+5 = 35).
  EXPECT_THROW((void)runtime.controller().split_flow(split_request(50.0),
                                                     0.0),
               std::domain_error);
}

}  // namespace
}  // namespace hp::core
