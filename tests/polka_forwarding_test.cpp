// Tests for stateless fabric forwarding and the port-switching baseline.

#include "polka/forwarding.hpp"

#include <gtest/gtest.h>

#include <random>

#include "polka/fastpath.hpp"
#include "polka/port_switching.hpp"

namespace hp::polka {
namespace {

// Linear chain A -> B -> C -> D, each node with 4 ports; port 1 goes
// "right", port 0 is host-facing (unwired).
PolkaFabric make_chain(ModEngine engine) {
  PolkaFabric fabric(engine);
  const auto a = fabric.add_node("A", 4);
  const auto b = fabric.add_node("B", 4);
  const auto c = fabric.add_node("C", 4);
  const auto d = fabric.add_node("D", 4);
  fabric.connect(a, 1, b);
  fabric.connect(b, 1, c);
  fabric.connect(c, 1, d);
  // Reverse direction on port 2.
  fabric.connect(b, 2, a);
  fabric.connect(c, 2, b);
  fabric.connect(d, 2, c);
  return fabric;
}

class FabricEngines : public ::testing::TestWithParam<ModEngine> {};

TEST_P(FabricEngines, ForwardAlongChain) {
  const PolkaFabric fabric = make_chain(GetParam());
  const std::vector<std::size_t> path{0, 1, 2, 3};
  const RouteId route = fabric.route_for_path(path, 0U);
  const auto trace = fabric.forward(route, 0);
  EXPECT_EQ(trace.nodes, path);
  EXPECT_EQ(trace.ports, (std::vector<unsigned>{1, 1, 1, 0}));
  EXPECT_EQ(trace.mod_operations, 4U);
}

TEST_P(FabricEngines, ReversePath) {
  const PolkaFabric fabric = make_chain(GetParam());
  const std::vector<std::size_t> path{3, 2, 1, 0};
  const RouteId route = fabric.route_for_path(path, 0U);
  const auto trace = fabric.forward(route, 3);
  EXPECT_EQ(trace.nodes, path);
}

TEST_P(FabricEngines, PartialPath) {
  const PolkaFabric fabric = make_chain(GetParam());
  const RouteId route = fabric.route_for_path({1, 2}, 3U);
  const auto trace = fabric.forward(route, 1);
  EXPECT_EQ(trace.nodes, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(trace.ports.back(), 3U);  // chosen egress port
}

INSTANTIATE_TEST_SUITE_P(Engines, FabricEngines,
                         ::testing::Values(ModEngine::kBitSerial,
                                           ModEngine::kTable,
                                           ModEngine::kDirect));

TEST(PolkaFabric, DuplicateNameRejected) {
  PolkaFabric fabric;
  fabric.add_node("X", 2);
  EXPECT_THROW(fabric.add_node("X", 2), std::invalid_argument);
}

TEST(PolkaFabric, IndexOf) {
  PolkaFabric fabric;
  fabric.add_node("MIA", 4);
  fabric.add_node("SAO", 4);
  EXPECT_EQ(fabric.index_of("SAO"), 1U);
  EXPECT_THROW((void)fabric.index_of("AMS"), std::out_of_range);
}

TEST(PolkaFabric, UnwiredPathRejected) {
  PolkaFabric fabric;
  const auto a = fabric.add_node("A", 2);
  const auto b = fabric.add_node("B", 2);
  (void)a;
  (void)b;
  EXPECT_THROW(fabric.route_for_path({0, 1}), std::invalid_argument);
}

TEST(PolkaFabric, HopLimitStopsForwarding) {
  // Wire a 2-node loop and craft a route that cycles; the hop guard
  // must terminate the trace.
  PolkaFabric fabric(ModEngine::kDirect);
  const auto a = fabric.add_node("A", 4);
  const auto b = fabric.add_node("B", 4);
  fabric.connect(a, 1, b);
  fabric.connect(b, 1, a);
  const RouteId looping =
      compute_route_id({{fabric.node(a), 1}, {fabric.node(b), 1}});
  const auto trace = fabric.forward(looping, a, 10);
  EXPECT_EQ(trace.nodes.size(), 10U);
}

TEST(PolkaFabric, RouteIdUnchangedAcrossHops) {
  // The defining PolKA property: the label carried by the packet is
  // immutable; forwarding consults it but never rewrites it.
  const PolkaFabric fabric = make_chain(ModEngine::kTable);
  const RouteId route = fabric.route_for_path({0, 1, 2, 3}, 0U);
  const gf2::Poly before = route.value;
  (void)fabric.forward(route, 0);
  EXPECT_EQ(route.value, before);
}

// --- port-switching baseline ------------------------------------------

TEST(PortListLabel, PopSequence) {
  PortListLabel label({1, 3, 2}, 4);
  EXPECT_EQ(label.remaining_hops(), 3U);
  EXPECT_EQ(label.bit_length(), 12U);
  EXPECT_EQ(label.pop_front(), 1U);
  EXPECT_EQ(label.pop_front(), 3U);
  EXPECT_EQ(label.bit_length(), 4U);
  EXPECT_EQ(label.pop_front(), 2U);
  EXPECT_TRUE(label.empty());
  EXPECT_THROW(label.pop_front(), std::out_of_range);
}

TEST(PortListLabel, FieldWidthValidation) {
  EXPECT_THROW(PortListLabel({1}, 0), std::invalid_argument);
  EXPECT_THROW(PortListLabel({1}, 17), std::invalid_argument);
  EXPECT_THROW(PortListLabel({16}, 4), std::invalid_argument);
  EXPECT_NO_THROW(PortListLabel({15}, 4));
}

TEST(PolkaFabricCopy, RewiredCopyDoesNotServeStaleCompiledView) {
  // Regression: a defaulted copy carried the source's cached compiled_
  // view; a copy that is then rewired must recompile, not keep serving
  // the source's wiring through the fast path.
  PolkaFabric original = make_chain(ModEngine::kTable);
  const RouteId route = original.route_for_path({0, 1, 2, 3}, 0U);
  (void)original.compiled();  // warm the cache that the copy must drop

  PolkaFabric rewired = original;
  const auto d = rewired.add_node("E", 4);
  rewired.connect(2, 1, d);  // C's "right" port now points at E, not D

  // Scalar and compiled walks agree on the rewired copy...
  const auto trace = rewired.forward(route, 0);
  const auto got =
      rewired.compiled().forward_one(pack_label_checked(route), 0);
  EXPECT_EQ(got.egress_node, trace.nodes.back());
  EXPECT_EQ(got.egress_port, trace.ports.back());
  EXPECT_EQ(got.hops, trace.nodes.size());
  // ...and the packet now traverses E where it used to traverse D.
  EXPECT_EQ(trace.nodes[3], d);

  // The original is untouched: same cached view, same walk as before.
  const auto original_walk =
      original.compiled().forward_one(pack_label_checked(route), 0);
  EXPECT_EQ(original_walk.egress_node, 3u);  // D
  EXPECT_EQ(original.node_count(), 4u);

  // Copy assignment drops the cache the same way.
  PolkaFabric assigned(ModEngine::kTable);
  assigned.add_node("solo", 2);
  assigned = rewired;
  EXPECT_EQ(assigned.compiled().node_count(), 5u);
  const auto assigned_walk =
      assigned.compiled().forward_one(pack_label_checked(route), 0);
  EXPECT_EQ(assigned_walk.egress_node, got.egress_node);
  EXPECT_EQ(assigned_walk.egress_port, got.egress_port);
}

TEST(PortListLabel, LabelShrinksPolkaDoesNot) {
  // Contrast the two SR schemes: the port list loses bits every hop
  // while PolKA's routeID length is invariant.
  const PolkaFabric fabric = make_chain(ModEngine::kDirect);
  const RouteId route = fabric.route_for_path({0, 1, 2, 3}, 0U);
  PortListLabel label({1, 1, 1, 0}, 2);
  const unsigned polka_bits = route.bit_length();
  unsigned prev = label.bit_length();
  while (!label.empty()) {
    (void)label.pop_front();
    EXPECT_LT(label.bit_length(), prev + 1);
    prev = label.bit_length();
  }
  EXPECT_EQ(route.bit_length(), polka_bits);
}

}  // namespace
}  // namespace hp::polka
