// JSON export tests: writer escaping, the hp-bench-v1 report document,
// $HP_BENCH_JSON_DIR routing, and the hp-report-v1 serializations --
// including the empty-run cases the divide-by-zero audit pinned (a
// zero-packet SimReport must export finite numbers, never NaN).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "sim/report.hpp"

namespace hp::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::string out;
  JsonWriter::escape_to(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriter, BuildsNestedDocuments) {
  JsonWriter json;
  json.begin_object();
  json.key("name");
  json.value("x");
  json.key("list");
  json.begin_array();
  json.value(1.5);
  json.value(std::uint64_t{2});
  json.end_array();
  json.end_object();
  EXPECT_EQ(std::move(json).str(), "{\"name\":\"x\",\"list\":[1.5,2]}");
}

TEST(BenchReport, EmitsSchemaAndResults) {
  BenchReport report("unit_test");
  BenchResult& r = report.add("replay/ring", 12.5, "ms", "table");
  r.counters.emplace_back("pps", 1e6);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"hp-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"replay/ring\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"table\""), std::string::npos);
  EXPECT_NE(json.find("\"pps\""), std::string::npos);
}

TEST(BenchReport, WriteDefaultHonorsEnvDir) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("HP_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  BenchReport report("envtest");
  report.add("metric", 1.0, "unit");
  const std::string path = report.write_default();
  unsetenv("HP_BENCH_JSON_DIR");
  EXPECT_NE(path.find(dir), std::string::npos);
  EXPECT_NE(path.find("BENCH_envtest.json"), std::string::npos);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("hp-bench-v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportExport, ScenarioReportRoundTrips) {
  scenario::ScenarioReport report;
  report.packets = 10;
  report.mod_operations = 40;
  report.seconds = 0.5;
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"schema\":\"hp-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"scenario\""), std::string::npos);
  EXPECT_NE(json.find("\"packets\":10"), std::string::npos);
  EXPECT_NE(json.find("\"mod_operations\":40"), std::string::npos);
}

TEST(ReportExport, ZeroPacketSimReportIsFinite) {
  // The empty-run audit case: no packets, no flows, no elapsed time.
  const sim::SimReport report;
  EXPECT_DOUBLE_EQ(report.drop_rate(), 0.0);
  EXPECT_EQ(report.fct_p50_ns(), 0u);
  EXPECT_EQ(report.fct_p95_ns(), 0u);
  EXPECT_DOUBLE_EQ(report.forwarding.packets_per_sec(), 0.0);

  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"kind\":\"sim\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"drop_rate\":0"), std::string::npos);
}

TEST(ReportExport, MetricsSnapshotSerializesEveryKind) {
  MetricRegistry reg;
  reg.counter("c").add(7);
  reg.gauge("g").set(-3);
  reg.histogram("h").record(9);
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"kind\":\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"value\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ReportExport, WriteTextFileWritesAndThrows) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.txt";
  write_text_file(path, "hello");
  EXPECT_EQ(slurp(path), "hello\n");  // files get a trailing newline
  std::remove(path.c_str());
  EXPECT_THROW(write_text_file("/nonexistent-dir-xyz/file", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace hp::obs
