// Fold-kernel parity: the slice-by-8 table fold, the portable software
// Barrett fold and the PCLMUL Barrett fold must agree bit for bit with
// the gf2::Poly reference on every generator degree the fast path
// accepts -- and whole CompiledFabrics forced onto either kernel must
// produce bit-identical PacketResults on every registry topology
// family, including the deep ring-1024 / torus-32x32 segmented
// streams.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "gf2/barrett.hpp"
#include "gf2/poly.hpp"
#include "polka/fastpath.hpp"
#include "polka/forwarding.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace hp::polka {
namespace {

using gf2::Poly;
using gf2::fixed::Barrett64;

/// A random polynomial of exact degree d (top bit forced, low bits
/// arbitrary -- fold parity needs no irreducibility).
std::uint64_t random_generator(std::mt19937_64& rng, unsigned d) {
  const std::uint64_t low_mask =
      d == 0 ? 0 : ((std::uint64_t{1} << d) - 1);
  return (std::uint64_t{1} << d) | (rng() & low_mask);
}

TEST(BarrettFold, SoftwareMatchesPolyReferenceAcrossAllDegrees) {
  std::mt19937_64 rng(0xB42237);
  for (unsigned d = 1; d <= 63; ++d) {
    for (int g_trial = 0; g_trial < 4; ++g_trial) {
      const std::uint64_t g = random_generator(rng, d);
      const Barrett64 constants = gf2::fixed::make_barrett(g);
      EXPECT_EQ(constants.degree, d);
      const Poly gp(g);
      for (int trial = 0; trial < 32; ++trial) {
        const std::uint64_t label = rng();
        const std::uint64_t want = (Poly(label) % gp).to_uint64();
        EXPECT_EQ(gf2::fixed::barrett_mod(constants, label), want)
            << "d=" << d << " g=" << g << " label=" << label;
      }
    }
  }
  EXPECT_THROW((void)gf2::fixed::barrett_mu(1), std::invalid_argument);
  EXPECT_THROW((void)gf2::fixed::barrett_mu(0), std::invalid_argument);
}

TEST(BarrettFold, TableClmulAndReferenceAgreeOnFastPathDegrees) {
  std::mt19937_64 rng(0xF01D);
  const bool hw = clmul_fold_supported();
  if (!hw) {
    GTEST_LOG_(INFO) << "PCLMUL unavailable; covering table vs software only";
  }
  for (unsigned d = 1; d <= 32; ++d) {
    for (int g_trial = 0; g_trial < 3; ++g_trial) {
      const std::uint64_t g = random_generator(rng, d);
      const Poly gp(g);
      const LabelFoldEngine table(gp);
      const Barrett64 constants = gf2::fixed::make_barrett(g);
      for (int trial = 0; trial < 64; ++trial) {
        // Mix raw random labels with edge shapes (all ones, top byte
        // only, the generator itself).
        std::uint64_t label = rng();
        if (trial == 0) label = 0;
        if (trial == 1) label = ~std::uint64_t{0};
        if (trial == 2) label = 0xFF00000000000000ull;
        if (trial == 3) label = g;
        const std::uint64_t want = (Poly(label) % gp).to_uint64();
        EXPECT_EQ(table.remainder(label), want) << "d=" << d;
        EXPECT_EQ(gf2::fixed::barrett_mod(constants, label), want) << "d=" << d;
        if (hw) {
          EXPECT_EQ(clmul_barrett_remainder(constants, label), want)
              << "d=" << d;
        }
      }
    }
  }
}

TEST(BarrettFold, ClmulRemainderThrowsWhenUnsupported) {
  const Barrett64 c = gf2::fixed::make_barrett(0b1011);  // x^3 + x + 1
  if (clmul_fold_supported()) {
    // x^3 mod (x^3 + x + 1) = x + 1.
    EXPECT_EQ(clmul_barrett_remainder(c, 0b1000), 0b011u);
  } else {
    EXPECT_THROW((void)clmul_barrett_remainder(c, 7), std::runtime_error);
  }
}

/// Forward every packet of a stream through one explicit kernel,
/// returning per-packet results (single-label lanes via the mixed
/// ingress forward_batch, segmented lanes via forward_batch_segmented).
std::vector<PacketResult> replay_with_kernel(
    const scenario::BuiltFabric& built, const scenario::PacketStream& stream,
    FoldKernel kernel, std::size_t max_hops) {
  const CompiledFabric fast(built.fabric(), kernel);
  EXPECT_EQ(fast.kernel(), kernel);
  std::vector<PacketResult> results(stream.size());

  std::vector<RouteLabel> plain_labels;
  std::vector<std::uint32_t> plain_firsts;
  std::vector<std::size_t> plain_at;
  std::vector<SegmentRef> seg_refs;
  std::vector<std::uint32_t> seg_firsts;
  std::vector<std::size_t> seg_at;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::uint32_t lane = stream.pair[i];
    if (!stream.seg_refs.empty() && stream.seg_refs[lane].label_count > 1) {
      seg_refs.push_back(stream.seg_refs[lane]);
      seg_firsts.push_back(stream.ingress[i]);
      seg_at.push_back(i);
    } else {
      plain_labels.push_back(stream.labels[i]);
      plain_firsts.push_back(stream.ingress[i]);
      plain_at.push_back(i);
    }
  }
  std::vector<PacketResult> plain_results(plain_labels.size());
  std::vector<PacketResult> seg_results(seg_refs.size());
  (void)fast.forward_batch(plain_labels, plain_firsts,
                           std::span<PacketResult>(plain_results), max_hops);
  if (!seg_refs.empty()) {
    (void)fast.forward_batch_segmented(
        stream.seg_labels, stream.seg_waypoints, seg_refs, seg_firsts,
        std::span<PacketResult>(seg_results), max_hops);
  }
  for (std::size_t i = 0; i < plain_at.size(); ++i) {
    results[plain_at[i]] = plain_results[i];
  }
  for (std::size_t i = 0; i < seg_at.size(); ++i) {
    results[seg_at[i]] = seg_results[i];
  }
  return results;
}

void expect_stream_kernel_parity(netsim::Topology topo, std::size_t packets,
                                 std::size_t max_pairs, std::size_t max_hops,
                                 bool expect_segments) {
  scenario::BuiltFabric built(std::move(topo));
  scenario::TrafficParams params;
  params.pattern = scenario::TrafficPattern::kUniformRandom;
  params.packets = packets;
  params.max_pairs = max_pairs;
  params.seed = 4242;
  scenario::PacketStream stream = scenario::generate_traffic(built, params);
  ASSERT_EQ(stream.unpackable_pairs, 0u);
  if (expect_segments) {
    std::size_t multi = 0;
    for (const SegmentRef& ref : stream.seg_refs) multi += ref.label_count > 1;
    ASSERT_GT(multi, 0u);
  }

  const auto table_results =
      replay_with_kernel(built, stream, FoldKernel::kTable, max_hops);
  // Deliveries must match the compiled expectations on the table path...
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_FALSE(table_results[i].ttl_expired) << i;
    EXPECT_EQ(table_results[i], stream.pairs[stream.pair[i]].expected) << i;
  }
  if (!clmul_fold_supported()) GTEST_SKIP() << "PCLMUL unavailable";
  // ...and the CLMUL path must reproduce them bit for bit.
  const auto clmul_results =
      replay_with_kernel(built, stream, FoldKernel::kClmulBarrett, max_hops);
  ASSERT_EQ(clmul_results.size(), table_results.size());
  for (std::size_t i = 0; i < table_results.size(); ++i) {
    ASSERT_EQ(clmul_results[i], table_results[i]) << "packet " << i;
  }
}

TEST(FoldKernelParity, EveryRegistryTopologyFamilyIsBitIdentical) {
  std::set<std::string> seen;
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    const std::string topo_name = spec.name.substr(0, spec.name.find('/'));
    if (!seen.insert(topo_name).second) continue;
    SCOPED_TRACE(topo_name);
    expect_stream_kernel_parity(scenario::build_topology(spec), 2048, 256, 64,
                                /*expect_segments=*/false);
  }
}

TEST(FoldKernelParity, Ring1024SegmentedStreamIsBitIdentical) {
  expect_stream_kernel_parity(scenario::make_ring(1024), 4096, 32, 2048,
                              /*expect_segments=*/true);
}

TEST(FoldKernelParity, Torus32x32SegmentedStreamIsBitIdentical) {
  expect_stream_kernel_parity(scenario::make_torus(32, 32), 4096, 32, 2048,
                              /*expect_segments=*/true);
}

TEST(FoldKernelParity, KernelSelectionAndStateBudget) {
  scenario::BuiltFabric built(scenario::make_ring(64));
  // Forcing the table kernel always works and pays for its tables.
  CompiledFabric table_fast(built.fabric(), FoldKernel::kTable);
  EXPECT_EQ(table_fast.kernel(), FoldKernel::kTable);
  const std::size_t table_bytes = table_fast.forwarding_state_bytes();
  EXPECT_GE(table_bytes,
            table_fast.node_count() * kFoldTableSize * sizeof(std::uint64_t));

  if (!clmul_fold_supported()) {
    EXPECT_THROW(CompiledFabric(built.fabric(), FoldKernel::kClmulBarrett),
                 std::invalid_argument);
    EXPECT_THROW(table_fast.set_kernel(FoldKernel::kClmulBarrett),
                 std::invalid_argument);
    return;
  }
  CompiledFabric clmul_fast(built.fabric(), FoldKernel::kClmulBarrett);
  EXPECT_EQ(clmul_fast.kernel(), FoldKernel::kClmulBarrett);
  // The compact path carries ~32 B/node + wiring -- orders of magnitude
  // under the 16 KB/node table set.
  EXPECT_LT(clmul_fast.forwarding_state_bytes() * 100, table_bytes);

  // port_of agrees across kernels and across set_kernel round trips.
  const RouteLabel label{0xFEEDFACECAFEBEEFull};
  const std::uint32_t want = table_fast.port_of(label, 7);
  EXPECT_EQ(clmul_fast.port_of(label, 7), want);
  clmul_fast.set_kernel(FoldKernel::kTable);
  EXPECT_EQ(clmul_fast.kernel(), FoldKernel::kTable);
  EXPECT_EQ(clmul_fast.port_of(label, 7), want);
  clmul_fast.set_kernel(FoldKernel::kClmulBarrett);
  EXPECT_EQ(clmul_fast.port_of(label, 7), want);

  // The default kernel honours the CPU (the HP_FORCE_TABLE_FOLD branch
  // is pinned by the CI rerun, which executes this whole binary with
  // the override set).
  EXPECT_EQ(default_fold_kernel(), table_fold_forced()
                                       ? FoldKernel::kTable
                                       : FoldKernel::kClmulBarrett);
}

TEST(FoldKernelParity, ScenarioReportNamesTheKernel) {
  scenario::BuiltFabric built(scenario::make_ring(32));
  scenario::TrafficParams params;
  params.packets = 512;
  params.seed = 9;
  scenario::PacketStream stream = scenario::generate_traffic(built, params);
  const scenario::ScenarioReport report =
      scenario::ScenarioRunner(scenario::RunnerOptions{}).run(built, stream);
  EXPECT_EQ(report.fold_kernel, default_fold_kernel());
  EXPECT_STREQ(report.fold_kernel_name(), to_string(default_fold_kernel()));
  EXPECT_EQ(report.wrong_egress, 0u);
}

}  // namespace
}  // namespace hp::polka
