// Contract-macro semantics (core/contracts.hpp) and the enforcement
// points wired into the protection and event-queue layers.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "scenario/protection.hpp"
#include "sim/event_queue.hpp"

namespace hp {
namespace {

TEST(Contracts, CheckPassesSilently) {
  int evaluations = 0;
  EXPECT_NO_THROW(HP_CHECK(++evaluations == 1, "must hold"));
  EXPECT_EQ(evaluations, 1);  // condition evaluated exactly once
}

TEST(Contracts, CheckThrowsContractViolationWithContext) {
  try {
    HP_CHECK(1 + 1 == 3, "arithmetic drifted");
    FAIL() << "HP_CHECK(false) did not throw";
  } catch (const core::ContractViolation& e) {
    const std::string what = e.what();
    // The message carries the caller's explanation, the stringized
    // expression, and the source location -- enough to act on from a
    // CI log alone.
    EXPECT_NE(what.find("arithmetic drifted"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("core_contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, ContractViolationIsALogicError) {
  // Catchable as std::logic_error: contract breaks are programming
  // errors, not runtime conditions callers should route around.
  EXPECT_THROW(HP_CHECK(false, "x"), std::logic_error);
}

TEST(Contracts, DcheckCompilesOutUnderNdebugButStillParses) {
  int evaluations = 0;
  HP_DCHECK(++evaluations >= 0, "side effect probe");
#if defined(NDEBUG) && !defined(HP_FORCE_DCHECKS)
  EXPECT_EQ(evaluations, 0);  // release: condition not evaluated
#else
  EXPECT_EQ(evaluations, 1);  // debug: full HP_CHECK semantics
  EXPECT_THROW(HP_DCHECK(false, "x"), core::ContractViolation);
#endif
}

TEST(Contracts, BackupInstallRejectsUnroutableRoutes) {
  // The protection plane copies backup fields straight into the live
  // route table on failover; contracts catch a malformed install at
  // install time instead of surfacing packets later.
  scenario::BackupTable table;
  scenario::BackupRoute no_labels;
  no_labels.path = {0, 1};
  EXPECT_THROW(table.install(7, {no_labels}), core::ContractViolation);

  scenario::BackupRoute no_path;
  no_path.segments.labels = {polka::RouteLabel{42}};
  EXPECT_THROW(table.install(7, {no_path}), core::ContractViolation);
  EXPECT_EQ(table.pair_count(), 0u);

  scenario::BackupRoute ok;
  ok.segments.labels = {polka::RouteLabel{42}};
  ok.path = {0, 1};
  EXPECT_NO_THROW(table.install(7, {ok}));
  EXPECT_EQ(table.pair_count(), 1u);
}

#if !defined(NDEBUG) || defined(HP_FORCE_DCHECKS)
TEST(Contracts, EventQueueGuardsEmptyTopAndPop) {
  sim::EventQueue q;
  EXPECT_THROW((void)q.top(), core::ContractViolation);
  EXPECT_THROW(q.pop(), core::ContractViolation);
}
#endif

}  // namespace
}  // namespace hp
