// Tests for the kernel models (GPR and SVR) and the regressor registry.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ml/gpr.hpp"
#include "ml/metrics.hpp"
#include "ml/registry.hpp"
#include "ml/svr.hpp"

namespace hp::ml {
namespace {

void make_sine(std::size_t n, Matrix& x, Vector& y, std::uint64_t seed = 21) {
  x = Matrix(n, 1);
  y.resize(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = u(rng);
    y[i] = std::sin(x(i, 0));
  }
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  Matrix x;
  Vector y;
  make_sine(40, x, y);
  GaussianProcessRegressor gpr;
  gpr.fit(x, y);
  // With near-zero noise the GP interpolates its training data.
  EXPECT_LT(rmse(y, gpr.predict(x)), 1e-4);
}

TEST(GaussianProcess, GeneralizesNearTrainingData) {
  Matrix x;
  Vector y;
  make_sine(80, x, y);
  GaussianProcessRegressor gpr;
  gpr.fit(x, y);
  Matrix x_test{{0.5}, {-1.2}, {2.0}};
  const Vector pred = gpr.predict(x_test);
  EXPECT_NEAR(pred[0], std::sin(0.5), 0.05);
  EXPECT_NEAR(pred[1], std::sin(-1.2), 0.05);
  EXPECT_NEAR(pred[2], std::sin(2.0), 0.05);
}

TEST(GaussianProcess, CollapsesToPriorMeanFarAway) {
  // The paper's Fig 8 failure mode: with unit length scale, queries far
  // from all training data revert to the zero prior mean.
  Matrix x;
  Vector y;
  make_sine(40, x, y);
  for (auto& v : y) v += 10.0;  // shift targets away from zero
  GaussianProcessRegressor gpr;
  gpr.fit(x, y);
  const Vector far = gpr.predict(Matrix{{100.0}});
  EXPECT_NEAR(far[0], 0.0, 1e-6);  // NOT ~10: reverts to prior
}

TEST(GaussianProcess, PosteriorStdSmallAtTrainingLargeFar) {
  Matrix x;
  Vector y;
  make_sine(30, x, y);
  GaussianProcessRegressor gpr;
  gpr.fit(x, y);
  const Vector std_at_train = gpr.predict_std(Matrix{{x(0, 0)}});
  const Vector std_far = gpr.predict_std(Matrix{{50.0}});
  EXPECT_LT(std_at_train[0], 0.01);
  EXPECT_GT(std_far[0], 0.9);
}

TEST(SvrLinear, FitsLineWithinEpsilon) {
  Matrix x(60, 1);
  Vector y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i) / 10.0 - 3.0;
    y[i] = 1.5 * x(i, 0) + 0.3;
  }
  SVR::Params params;
  params.kernel = SvrKernel::kLinear;
  params.c = 10.0;
  SVR model(params);
  model.fit(x, y);
  // Epsilon-insensitive: errors should be near the 0.1 tube.
  EXPECT_LT(rmse(y, model.predict(x)), 0.15);
}

TEST(SvrRbf, FitsSine) {
  Matrix x;
  Vector y;
  make_sine(120, x, y);
  SVR::Params params;
  params.kernel = SvrKernel::kRbf;
  params.c = 10.0;
  SVR model(params);
  model.fit(x, y);
  EXPECT_LT(rmse(y, model.predict(x)), 0.2);
  EXPECT_GT(model.support_vector_count(), 0U);
}

TEST(Svr, DualVariablesRespectBox) {
  // Indirect check: with tiny C the fit saturates and underfits.
  Matrix x;
  Vector y;
  make_sine(60, x, y);
  for (double& v : y) v *= 20.0;  // big targets vs small C
  SVR::Params params;
  params.c = 0.01;
  SVR weak(params);
  weak.fit(x, y);
  params.c = 50.0;
  SVR strong(params);
  strong.fit(x, y);
  EXPECT_LT(rmse(y, strong.predict(x)), rmse(y, weak.predict(x)));
}

TEST(Registry, EighteenModelsWithPaperLabels) {
  const auto catalog = make_regressor_catalog();
  ASSERT_EQ(catalog.size(), 18U);
  EXPECT_EQ(catalog[0].label, "R1:AdaBoostR");
  EXPECT_EQ(catalog[6].label, "R7:GPR");
  EXPECT_EQ(catalog[12].label, "R13:RFR");
  EXPECT_EQ(catalog[17].label, "R18:TheilSenR");
  for (const auto& entry : catalog) {
    EXPECT_NE(entry.model, nullptr) << entry.label;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_regressor("Perceptron"), std::invalid_argument);
}

// Property sweep: every catalogue model fits a noiseless linear signal
// and beats the predict-the-mean baseline on training data.
class AllRegressorsSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(AllRegressorsSanity, BeatsMeanBaselineOnLinearSignal) {
  auto model = make_regressor(GetParam());
  std::mt19937_64 rng(77);
  std::normal_distribution<double> u(0.0, 1.0);
  Matrix x(120, 3);
  Vector y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = u(rng);
    y[i] = 2.0 * x(i, 0) - x(i, 1) + 0.5 * x(i, 2);
  }
  model->fit(x, y);
  const double model_rmse = rmse(y, model->predict(x));
  Vector mean_pred(y.size(), mean(y));
  const double baseline = rmse(y, mean_pred);
  EXPECT_LT(model_rmse, baseline) << GetParam();
}

TEST_P(AllRegressorsSanity, PredictionSizeMatchesQuery) {
  auto model = make_regressor(GetParam());
  Matrix x(40, 2);
  Vector y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = static_cast<double>(i % 7);
    y[i] = static_cast<double>(i % 5);
  }
  model->fit(x, y);
  Matrix q(7, 2, 1.0);
  EXPECT_EQ(model->predict(q).size(), 7U) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Catalog, AllRegressorsSanity,
                         ::testing::ValuesIn(regressor_short_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '_') c = '0';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hp::ml
