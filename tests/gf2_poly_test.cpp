// Unit and property tests for GF(2) polynomial arithmetic.

#include "gf2/poly.hpp"

#include <gtest/gtest.h>

#include <random>

namespace hp::gf2 {
namespace {

Poly random_poly(std::mt19937_64& rng, int max_degree) {
  std::uniform_int_distribution<int> deg(-1, max_degree);
  const int d = deg(rng);
  Poly p;
  if (d < 0) return p;
  for (int i = 0; i < d; ++i) {
    if (rng() & 1) p.set_coeff(static_cast<unsigned>(i), true);
  }
  p.set_coeff(static_cast<unsigned>(d), true);
  return p;
}

TEST(Poly, ZeroHasDegreeMinusOne) {
  EXPECT_EQ(Poly{}.degree(), -1);
  EXPECT_TRUE(Poly{}.is_zero());
  EXPECT_EQ(Poly{0}.degree(), -1);
}

TEST(Poly, ConstructionFromBits) {
  const Poly p(0b1011);  // t^3 + t + 1
  EXPECT_EQ(p.degree(), 3);
  EXPECT_TRUE(p.coeff(0));
  EXPECT_TRUE(p.coeff(1));
  EXPECT_FALSE(p.coeff(2));
  EXPECT_TRUE(p.coeff(3));
  EXPECT_FALSE(p.coeff(4));
  EXPECT_EQ(p.to_string(), "t^3 + t + 1");
}

TEST(Poly, FromExponents) {
  const Poly p = Poly::from_exponents({3, 1, 0});
  EXPECT_EQ(p, Poly(0b1011));
  // Duplicates cancel in characteristic 2.
  EXPECT_EQ(Poly::from_exponents({2, 2}), Poly{});
}

TEST(Poly, BinaryStringRoundTrip) {
  const Poly p = Poly::from_binary_string("10011");
  EXPECT_EQ(p, Poly(0b10011));
  EXPECT_EQ(p.to_binary_string(), "10011");
  EXPECT_EQ(Poly::from_binary_string("").degree(), -1);
  EXPECT_THROW(Poly::from_binary_string("10x1"), std::invalid_argument);
}

TEST(Poly, Monomial) {
  EXPECT_EQ(Poly::monomial(0), Poly(1));
  EXPECT_EQ(Poly::monomial(7), Poly(1U << 7));
  EXPECT_EQ(Poly::monomial(100).degree(), 100);
}

TEST(Poly, AdditionIsXor) {
  const Poly a(0b1100), b(0b1010);
  EXPECT_EQ(a + b, Poly(0b0110));
  EXPECT_EQ(a + a, Poly{});  // characteristic 2
}

TEST(Poly, MultiplicationSmall) {
  // (t + 1)(t + 1) = t^2 + 1 over GF(2).
  EXPECT_EQ(Poly(0b11) * Poly(0b11), Poly(0b101));
  // (t^2 + t + 1)(t + 1) = t^3 + 1.
  EXPECT_EQ(Poly(0b111) * Poly(0b11), Poly(0b1001));
  EXPECT_EQ(Poly(0b111) * Poly{}, Poly{});
  EXPECT_EQ(Poly(0b111) * Poly(1), Poly(0b111));
}

TEST(Poly, MultiplicationCrossesWordBoundary) {
  const Poly a = Poly::monomial(60);
  const Poly b = Poly::monomial(10);
  EXPECT_EQ((a * b).degree(), 70);
  const Poly c = Poly::monomial(63) + Poly(1);
  const Poly d = Poly::monomial(64);
  EXPECT_EQ((c * d).degree(), 127);
}

TEST(Poly, DivModIdentity) {
  const Poly a(0b110101), b(0b101);
  const auto [q, r] = divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r.degree(), b.degree());
}

TEST(Poly, DivisionByZeroThrows) {
  EXPECT_THROW(divmod(Poly(0b101), Poly{}), std::domain_error);
}

TEST(Poly, PaperExampleMod) {
  // Paper Section II-B: routeID 10000 mod s2 = t^2+t+1 yields port 2.
  const Poly route_id = Poly::from_binary_string("10000");
  const Poly s2 = Poly::from_binary_string("111");
  EXPECT_EQ((route_id % s2).to_uint64(), 2U);
}

TEST(Poly, SquaredMatchesSelfMultiply) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const Poly p = random_poly(rng, 200);
    EXPECT_EQ(p.squared(), p * p);
  }
}

TEST(Poly, ToUint64Bounds) {
  EXPECT_EQ(Poly(0xDEADBEEF).to_uint64(), 0xDEADBEEFULL);
  EXPECT_THROW((void)Poly::monomial(64).to_uint64(), std::overflow_error);
}

TEST(Poly, OrderingIsTotal) {
  EXPECT_LT(Poly(0b10), Poly(0b11));
  EXPECT_LT(Poly(0b11), Poly(0b100));
  EXPECT_LT(Poly{}, Poly(1));
  EXPECT_EQ(Poly(5) <=> Poly(5), std::strong_ordering::equal);
}

TEST(Poly, HashDistinguishesValues) {
  EXPECT_NE(Poly(0b101).hash(), Poly(0b110).hash());
  EXPECT_EQ(Poly(42).hash(), Poly(42).hash());
}

TEST(Poly, SetCoeffClearNormalizes) {
  Poly p = Poly::monomial(100);
  p.set_coeff(100, false);
  EXPECT_TRUE(p.is_zero());
  EXPECT_EQ(p.degree(), -1);
}

// --- property suite over random operands ------------------------------

class PolyRingProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolyRingProperty, RingAxioms) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const Poly a = random_poly(rng, 150);
  const Poly b = random_poly(rng, 150);
  const Poly c = random_poly(rng, 150);
  // Commutativity and associativity.
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  // Distributivity.
  EXPECT_EQ(a * (b + c), a * b + a * c);
  // Additive self-inverse.
  EXPECT_TRUE((a + a).is_zero());
  // Multiplicative identity.
  EXPECT_EQ(a * Poly(1), a);
}

TEST_P(PolyRingProperty, DivModInvariant) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const Poly a = random_poly(rng, 300);
  Poly b = random_poly(rng, 80);
  if (b.is_zero()) b = Poly(0b11);
  const auto [q, r] = divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r.degree(), b.degree());
}

TEST_P(PolyRingProperty, DegreeOfProduct) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  const Poly a = random_poly(rng, 120);
  const Poly b = random_poly(rng, 120);
  if (a.is_zero() || b.is_zero()) {
    EXPECT_TRUE((a * b).is_zero());
  } else {
    // No zero divisors in GF(2)[t]: degrees add exactly.
    EXPECT_EQ((a * b).degree(), a.degree() + b.degree());
  }
}

TEST_P(PolyRingProperty, GcdDividesBoth) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 3000);
  const Poly a = random_poly(rng, 60);
  const Poly b = random_poly(rng, 60);
  if (a.is_zero() && b.is_zero()) return;
  const Poly g = gcd(a, b);
  if (!a.is_zero()) {
    EXPECT_TRUE((a % g).is_zero());
  }
  if (!b.is_zero()) {
    EXPECT_TRUE((b % g).is_zero());
  }
}

TEST_P(PolyRingProperty, ExtendedGcdBezout) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  Poly a = random_poly(rng, 60);
  Poly b = random_poly(rng, 60);
  if (a.is_zero()) a = Poly(0b10);
  if (b.is_zero()) b = Poly(0b11);
  const Egcd e = extended_gcd(a, b);
  EXPECT_EQ(e.u * a + e.v * b, e.g);
  EXPECT_EQ(e.g, gcd(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyRingProperty, ::testing::Range(0, 25));

TEST(PolyModular, InverseRoundTrip) {
  // In GF(2)[t]/(irreducible m) every nonzero element is invertible.
  const Poly m(0b10011);  // t^4 + t + 1, irreducible
  for (std::uint64_t v = 1; v < 16; ++v) {
    const Poly a(v);
    const Poly inv = inverse_mod(a, m);
    EXPECT_TRUE(((a * inv) % m).is_one()) << "v=" << v;
  }
}

TEST(PolyModular, NonInvertibleThrows) {
  const Poly m(0b101);  // t^2 + 1 = (t+1)^2, reducible
  EXPECT_THROW(inverse_mod(Poly(0b11), m), std::domain_error);
}

TEST(PolyModular, FrobeniusPowMatchesRepeatedSquaring) {
  const Poly m(0b1011);  // t^3 + t + 1
  const Poly t = Poly::monomial(1);
  // t^(2^3) mod m must equal t for an irreducible degree-3 modulus.
  EXPECT_EQ(frobenius_pow(t, 3, m), t % m);
}

}  // namespace
}  // namespace hp::gf2
