// Observability-through-the-simulator tests: registry counters agree
// with the SimReport, snapshots and flight recordings are bit-identical
// for a fixed seed across runs and compile thread counts, phase traces
// appear, the telemetry bridge writes deterministic gauge series on
// simulated ticks, and replay metrics mirror ScenarioReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/traffic.hpp"
#include "sim/runner.hpp"
#include "telemetry/store.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;
namespace obs = hp::obs;

namespace {

scenario::ScenarioSpec small_spec(const char* name) {
  const scenario::ScenarioSpec* base = scenario::find_scenario(name);
  EXPECT_NE(base, nullptr) << name;
  scenario::ScenarioSpec spec = *base;
  spec.traffic.packets = 2048;
  spec.traffic.max_pairs = 64;
  spec.traffic.seed = 5;
  return spec;
}

TEST(SimObservability, CountersAgreeWithReport) {
  const scenario::ScenarioSpec spec = small_spec("torus4x4/hotspot");
  obs::MetricRegistry registry;
  sim::SimOptions options;
  options.metrics = &registry;
  const sim::SimReport report = sim::run_sim_scenario(spec, options);
  const obs::MetricsSnapshot snap = registry.snapshot();

  EXPECT_EQ(snap.counter_or("sim.injected"),
            report.forwarding.packets + report.forwarding.dropped_packets);
  EXPECT_EQ(snap.counter_or("sim.tail_drops"),
            report.forwarding.dropped_packets);
  EXPECT_EQ(snap.counter_or("sim.ttl_expired"),
            report.forwarding.ttl_expired);
  EXPECT_EQ(snap.counter_or("sim.ecn_marked"), report.ecn_marked);
  EXPECT_EQ(snap.counter_or("sim.folds"), report.forwarding.mod_operations);
  EXPECT_EQ(snap.counter_or("sim.wrong_egress"),
            report.forwarding.wrong_egress);
  EXPECT_EQ(snap.counter_or("sim.flows"), report.flows);
  EXPECT_EQ(snap.counter_or("sim.completed_flows"), report.completed_flows);
  // Every in-flight packet terminated one way or another.
  const obs::MetricValue* in_flight = snap.find("sim.in_flight");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(in_flight->gauge, 0);
  // One FCT histogram sample per completed flow.
  const obs::MetricValue* fct = snap.find("sim.fct_ns");
  ASSERT_NE(fct, nullptr);
  EXPECT_EQ(fct->histogram.count, report.completed_flows);
  // Compile metrics flowed through the fabric the runner compiled.
  EXPECT_GT(snap.counter_or("compile.routes"), 0u);
}

// Everything derived from simulated ticks is deterministic; the only
// wall-clock values in the registry are the compile/replay phase
// timing histograms (compile.*_ns, replay.slice_ns).  Drop those to
// get the view the bit-identical guarantee covers.  sim.fct_ns stays:
// flow completion times are simulated time.
obs::MetricsSnapshot deterministic_view(obs::MetricsSnapshot snap) {
  std::erase_if(snap.entries, [](const obs::MetricValue& m) {
    return m.name.ends_with("_ns") && !m.name.starts_with("sim.");
  });
  return snap;
}

TEST(SimObservability, SnapshotBitIdenticalAcrossRunsAndThreads) {
  const scenario::ScenarioSpec spec = small_spec("torus4x4/hotspot");

  auto snapshot_with_threads = [&spec](unsigned threads) {
    obs::MetricRegistry registry;
    sim::SimOptions options;
    options.metrics = &registry;
    options.compile_threads = threads;
    (void)sim::run_sim_scenario(spec, options);
    return deterministic_view(registry.snapshot());
  };

  const obs::MetricsSnapshot first = snapshot_with_threads(1);
  EXPECT_FALSE(first.entries.empty());
  EXPECT_EQ(first, snapshot_with_threads(1))
      << "same seed, same options: snapshot must be bit-identical";
  EXPECT_EQ(first, snapshot_with_threads(4))
      << "compile threading must not leak into sim metrics";
}

TEST(SimObservability, FailoverSnapshotBitIdenticalAcrossRunsAndThreads) {
  // The failover path adds fabric mutation mid-run (flap = failures AND
  // restores) plus backup swaps; none of it may leak wall clock or
  // thread order into the sim.* metric space or the report.
  const scenario::ScenarioSpec spec = small_spec("torus4x4/uniform");

  auto run_with_threads = [&spec](unsigned threads) {
    obs::MetricRegistry registry;
    sim::SimOptions options;
    options.metrics = &registry;
    options.compile_threads = threads;
    options.protection_k = 1;
    scenario::FailureInjectorParams inject;
    inject.preset = scenario::FailurePreset::kFlap;
    inject.seed = 31;
    inject.count = 2;
    options.failures = scenario::make_failure_schedule(
        scenario::build_topology(spec), inject);
    sim::SimReport report = sim::run_sim_scenario(spec, options);
    report.forwarding.seconds = 0.0;  // the one wall-clock field
    return std::make_pair(deterministic_view(registry.snapshot()), report);
  };

  const auto [first_snap, first_report] = run_with_threads(1);
  EXPECT_FALSE(first_snap.entries.empty());
  EXPECT_GT(first_report.forwarding.rerouted_pairs, 0u);
  EXPECT_EQ(first_report.forwarding.wrong_egress, 0u);

  const auto [again_snap, again_report] = run_with_threads(1);
  EXPECT_EQ(first_snap, again_snap) << "rerun diverged under failover";
  EXPECT_EQ(first_report, again_report);

  const auto [threaded_snap, threaded_report] = run_with_threads(4);
  EXPECT_EQ(first_snap, threaded_snap)
      << "compile threading leaked into failover metrics";
  EXPECT_EQ(first_report, threaded_report);
}

TEST(SimObservability, FlightRecorderIsDeterministic) {
  const scenario::ScenarioSpec spec = small_spec("torus4x4/hotspot");

  auto record = [&spec]() {
    obs::FlightRecorder recorder(/*capacity=*/512, /*sample_every=*/4);
    sim::SimOptions options;
    options.recorder = &recorder;
    (void)sim::run_sim_scenario(spec, options);
    return recorder;
  };

  const obs::FlightRecorder first = record();
  EXPECT_GT(first.total_recorded(), 0u);
  EXPECT_FALSE(first.records().empty());
  const obs::FlightRecorder again = record();
  EXPECT_EQ(first.records(), again.records());
  EXPECT_EQ(first.to_json(), again.to_json());

  // Only sampled flows appear.
  for (const obs::HopRecord& r : first.records()) {
    EXPECT_EQ(r.flow % 4, 0u);
  }
}

TEST(SimObservability, PhaseTraceCoversRunnerStages) {
  const scenario::ScenarioSpec spec = small_spec("ring12/uniform");
  obs::TraceSink sink;
  sim::SimOptions options;
  options.trace = &sink;
  (void)sim::run_sim_scenario(spec, options);

  std::vector<std::string> names;
  for (const obs::TraceEvent& e : sink.events()) names.push_back(e.name);
  for (const char* phase :
       {"sim.wire", "sim.schedule", "sim.simulate", "sim.report",
        "compile.all_pairs"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), phase), names.end())
        << "missing trace phase " << phase;
  }
}

TEST(SimObservability, TelemetryBridgeWritesDeterministicSeries) {
  const scenario::ScenarioSpec spec = small_spec("ring12/uniform");

  auto sample = [&spec]() {
    hp::telemetry::TimeSeriesStore store;
    sim::SimOptions options;
    options.telemetry = &store;
    options.telemetry_period_ns = 50'000;
    (void)sim::run_sim_scenario(spec, options);
    return store;
  };

  hp::telemetry::TimeSeriesStore store = sample();
  const auto names = store.series_names();
  ASSERT_FALSE(names.empty());
  // Gauge series: the global in-flight level plus one depth per link.
  EXPECT_TRUE(store.has_series("sim.in_flight"));
  EXPECT_TRUE(store.has_series("sim.link.00000.queue_depth"));

  hp::telemetry::TimeSeriesStore again = sample();
  ASSERT_EQ(again.series_names(), names);
  for (const std::string& name : names) {
    const auto a = store.range(name, 0.0, 1e18);
    const auto b = again.range(name, 0.0, 1e18);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].t_s, b[i].t_s) << name;
      EXPECT_DOUBLE_EQ(a[i].value, b[i].value) << name;
    }
  }
}

TEST(ReplayObservability, MetricsMirrorScenarioReport) {
  const scenario::ScenarioSpec spec = small_spec("torus4x4/uniform");
  obs::MetricRegistry registry;
  scenario::BuiltFabric fabric(scenario::build_topology(spec));
  fabric.set_observability(&registry, nullptr);
  scenario::PacketStream stream =
      scenario::generate_traffic(fabric, spec.traffic);

  scenario::RunnerOptions options;
  options.threads = 2;
  options.metrics = &registry;
  const scenario::ScenarioReport report =
      scenario::ScenarioRunner(options).run(fabric, stream);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("replay.packets"), report.packets);
  EXPECT_EQ(snap.counter_or("replay.folds"), report.mod_operations);
  EXPECT_EQ(snap.counter_or("replay.wrong_egress"), report.wrong_egress);
  EXPECT_EQ(snap.counter_or("replay.epochs"), 1u);
  EXPECT_GT(snap.counter_or("replay.slices"), 0u);
  EXPECT_GT(snap.counter_or("compile.routes"), 0u);
}

}  // namespace
