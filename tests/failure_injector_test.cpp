// FailureInjector: deterministic schedule generation over a topology.
// The contract under test is reproducibility (same params -> identical
// schedule), preset shape (single / storm / flap semantics) and window
// discipline (no event outside [start_fraction, end_fraction)).

#include "scenario/failure_injector.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "scenario/topologies.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;
using netsim::Topology;

FailureInjectorParams params_for(FailurePreset preset, std::uint64_t seed,
                                 std::size_t count) {
  FailureInjectorParams params;
  params.preset = preset;
  params.seed = seed;
  params.count = count;
  return params;
}

bool same_schedule(const std::vector<LinkFailure>& lhs,
                   const std::vector<LinkFailure>& rhs) {
  if (lhs.size() != rhs.size()) return false;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].at_fraction != rhs[i].at_fraction || lhs[i].a != rhs[i].a ||
        lhs[i].b != rhs[i].b || lhs[i].restore != rhs[i].restore) {
      return false;
    }
  }
  return true;
}

TEST(FailureInjector, SameSeedSameSchedule) {
  const Topology topo = make_fat_tree(4);
  for (const FailurePreset preset :
       {FailurePreset::kSingle, FailurePreset::kStorm, FailurePreset::kFlap,
        FailurePreset::kSrlg}) {
    const auto first =
        make_failure_schedule(topo, params_for(preset, 77, 3));
    const auto second =
        make_failure_schedule(topo, params_for(preset, 77, 3));
    EXPECT_TRUE(same_schedule(first, second)) << to_string(preset);
    const auto other =
        make_failure_schedule(topo, params_for(preset, 78, 3));
    EXPECT_FALSE(same_schedule(first, other))
        << to_string(preset) << ": seed is ignored";
  }
}

TEST(FailureInjector, ScheduleIsSortedAndWindowed) {
  const Topology topo = make_torus(4, 4);
  for (const FailurePreset preset :
       {FailurePreset::kSingle, FailurePreset::kStorm, FailurePreset::kFlap,
        FailurePreset::kSrlg}) {
    FailureInjectorParams params = params_for(preset, 5, 4);
    params.start_fraction = 0.30;
    params.end_fraction = 0.80;
    const auto schedule = make_failure_schedule(topo, params);
    ASSERT_FALSE(schedule.empty()) << to_string(preset);
    double last = 0.0;
    for (const LinkFailure& event : schedule) {
      EXPECT_GE(event.at_fraction, params.start_fraction);
      EXPECT_LT(event.at_fraction, params.end_fraction);
      EXPECT_GE(event.at_fraction, last) << "schedule not sorted";
      last = event.at_fraction;
      EXPECT_NE(event.a, event.b);
    }
  }
}

TEST(FailureInjector, SinglePicksDistinctLinksNoRestores) {
  const Topology topo = make_ring(12);
  const auto schedule =
      make_failure_schedule(topo, params_for(FailurePreset::kSingle, 9, 5));
  EXPECT_EQ(schedule.size(), 5U);
  std::set<std::pair<NodeIndex, NodeIndex>> links;
  for (const LinkFailure& event : schedule) {
    EXPECT_FALSE(event.restore);
    links.insert({std::min(event.a, event.b), std::max(event.a, event.b)});
  }
  EXPECT_EQ(links.size(), 5U) << "single preset reused a link";
}

TEST(FailureInjector, StormTakesEveryLinkOfTheEpicentre) {
  // One storm on a ring: some router fails, and exactly its two ring
  // links go down at the same instant.
  const Topology topo = make_ring(8);
  const auto schedule =
      make_failure_schedule(topo, params_for(FailurePreset::kStorm, 21, 1));
  ASSERT_EQ(schedule.size(), 2U);
  EXPECT_DOUBLE_EQ(schedule[0].at_fraction, schedule[1].at_fraction);
  // The epicentre is the endpoint both events share.
  std::map<NodeIndex, int> touched;
  for (const LinkFailure& event : schedule) {
    EXPECT_FALSE(event.restore);
    ++touched[event.a];
    ++touched[event.b];
  }
  int epicentres = 0;
  for (const auto& [node, hits] : touched) {
    if (hits == 2) ++epicentres;
  }
  EXPECT_EQ(epicentres, 1);
}

TEST(FailureInjector, FlapAlternatesDownUpPerLink) {
  const Topology topo = make_leaf_spine(4, 8);
  FailureInjectorParams params = params_for(FailurePreset::kFlap, 13, 2);
  params.mean_up_fraction = 0.10;
  params.mean_down_fraction = 0.03;
  const auto schedule = make_failure_schedule(topo, params);
  ASSERT_FALSE(schedule.empty());
  // Per flapping link the events must read down, up, down, up, ...
  std::map<std::pair<NodeIndex, NodeIndex>, std::vector<bool>> restores;
  for (const LinkFailure& event : schedule) {
    restores[{std::min(event.a, event.b), std::max(event.a, event.b)}]
        .push_back(event.restore);
  }
  EXPECT_LE(restores.size(), 2U);
  for (const auto& [link, sequence] : restores) {
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      EXPECT_EQ(sequence[i], i % 2 == 1)
          << "flap sequence out of phase at event " << i;
    }
  }
}

TEST(FailureInjector, SrlgFailsACorrelatedGroupAtOneInstant) {
  // One shared-risk event on a torus: exactly srlg_size distinct links
  // down at the same fraction, no restores.
  const Topology topo = make_torus(4, 4);
  FailureInjectorParams params = params_for(FailurePreset::kSrlg, 31, 1);
  params.srlg_size = 4;
  const auto schedule = make_failure_schedule(topo, params);
  ASSERT_EQ(schedule.size(), 4U);
  std::set<std::pair<NodeIndex, NodeIndex>> links;
  for (const LinkFailure& event : schedule) {
    EXPECT_FALSE(event.restore);
    EXPECT_DOUBLE_EQ(event.at_fraction, schedule.front().at_fraction)
        << "group members must share fate at one instant";
    links.insert({std::min(event.a, event.b), std::max(event.a, event.b)});
  }
  EXPECT_EQ(links.size(), 4U) << "srlg group reused a link";

  // Group size clamps to the eligible population instead of throwing.
  FailureInjectorParams huge = params_for(FailurePreset::kSrlg, 31, 1);
  huge.srlg_size = 10'000;
  const auto clamped = make_failure_schedule(topo, huge);
  EXPECT_GE(clamped.size(), 1U);
  EXPECT_LE(clamped.size(), 10'000U);

  // A zero group size is a caller bug.
  FailureInjectorParams zero = params_for(FailurePreset::kSrlg, 31, 1);
  zero.srlg_size = 0;
  EXPECT_THROW((void)make_failure_schedule(topo, zero),
               std::invalid_argument);
}

TEST(FailureInjector, RejectsBadWindowsAndLinklessGraphs) {
  const Topology topo = make_ring(4);
  FailureInjectorParams params;
  params.start_fraction = 0.8;
  params.end_fraction = 0.2;  // empty window
  EXPECT_THROW((void)make_failure_schedule(topo, params),
               std::invalid_argument);
  params.start_fraction = -0.5;
  params.end_fraction = 0.5;
  EXPECT_THROW((void)make_failure_schedule(topo, params),
               std::invalid_argument);

  Topology hostile;  // two hosts, no router-router duplex link
  hostile.add_node("h1", netsim::NodeKind::kHost);
  hostile.add_node("h2", netsim::NodeKind::kHost);
  hostile.add_duplex_link(0, 1, 100.0, 1.0);
  EXPECT_THROW(
      (void)make_failure_schedule(hostile, FailureInjectorParams{}),
      std::invalid_argument);
}

TEST(FailureInjector, PresetNamesRoundTrip) {
  for (const FailurePreset preset :
       {FailurePreset::kSingle, FailurePreset::kStorm, FailurePreset::kFlap,
        FailurePreset::kSrlg}) {
    const auto parsed = parse_failure_preset(to_string(preset));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, preset);
  }
  EXPECT_FALSE(parse_failure_preset("meteor").has_value());
  EXPECT_FALSE(parse_failure_preset("").has_value());
}

}  // namespace
}  // namespace hp::scenario
