// Tests for the CART tree and the tree ensembles.

#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ml/ensemble.hpp"
#include "ml/hist_gbr.hpp"
#include "ml/metrics.hpp"

namespace hp::ml {
namespace {

/// Piecewise-constant 1-D target: the natural habitat of a tree.
void make_steps(std::size_t n, Matrix& x, Vector& y, double noise_sd = 0.0,
                std::uint64_t seed = 4) {
  x = Matrix(n, 1);
  y.resize(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 10.0);
  std::normal_distribution<double> noise(0.0, noise_sd);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = u(rng);
    x(i, 0) = v;
    y[i] = (v < 3.0 ? 1.0 : (v < 7.0 ? 5.0 : -2.0)) +
           (noise_sd > 0.0 ? noise(rng) : 0.0);
  }
}

/// Smooth nonlinear surface for the boosted models.
void make_smooth(std::size_t n, Matrix& x, Vector& y, std::uint64_t seed = 8) {
  x = Matrix(n, 2);
  y.resize(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = u(rng);
    x(i, 1) = u(rng);
    y[i] = x(i, 0) * x(i, 0) + std::sin(2.0 * x(i, 1));
  }
}

TEST(DecisionTree, FitsStepsExactly) {
  Matrix x;
  Vector y;
  make_steps(200, x, y);
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_LT(rmse(y, tree.predict(x)), 1e-9);  // unlimited depth memorizes
}

TEST(DecisionTree, MaxDepthLimitsComplexity) {
  Matrix x;
  Vector y;
  make_steps(200, x, y);
  TreeParams params;
  params.max_depth = 1;
  DecisionTreeRegressor stump(params);
  stump.fit(x, y);
  EXPECT_LE(stump.depth(), 1U);
  EXPECT_LE(stump.node_count(), 3U);
  // A stump cannot capture three plateaus.
  EXPECT_GT(rmse(y, stump.predict(x)), 0.5);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  Matrix x;
  Vector y;
  make_steps(50, x, y, 0.3);
  TreeParams params;
  params.min_samples_leaf = 10;
  DecisionTreeRegressor tree(params);
  tree.fit(x, y);
  // With >= 10 samples per leaf, at most 5 leaves for 50 samples.
  EXPECT_LE(tree.node_count(), 9U);  // 5 leaves + 4 internal
}

TEST(DecisionTree, ConstantTargetSingleLeaf) {
  Matrix x{{1}, {2}, {3}};
  Vector y{7, 7, 7};
  DecisionTreeRegressor tree;
  tree.fit(x, y);
  EXPECT_EQ(tree.node_count(), 1U);
  EXPECT_DOUBLE_EQ(tree.predict(Matrix{{9.0}})[0], 7.0);
}

TEST(DecisionTree, FeatureMismatchThrows) {
  DecisionTreeRegressor tree;
  tree.fit(Matrix{{1.0}, {2.0}}, {1.0, 2.0});
  EXPECT_THROW((void)tree.predict(Matrix{{1.0, 2.0}}), std::invalid_argument);
}

TEST(Bagging, AveragesReduceVariance) {
  Matrix x;
  Vector y;
  make_steps(150, x, y, 1.0);
  Matrix x_test;
  Vector y_test;
  make_steps(150, x_test, y_test, 0.0, 99);
  DecisionTreeRegressor single;
  single.fit(x, y);
  BaggingRegressor bagged;
  bagged.fit(x, y);
  EXPECT_EQ(bagged.estimator_count(), 10U);
  // Against the clean truth, averaging must beat one overfit tree.
  EXPECT_LT(rmse(y_test, bagged.predict(x_test)),
            rmse(y_test, single.predict(x_test)));
}

TEST(RandomForest, DefaultHundredTrees) {
  Matrix x;
  Vector y;
  make_steps(80, x, y, 0.5);
  RandomForestRegressor forest(20);  // smaller for test speed
  forest.fit(x, y);
  EXPECT_EQ(forest.estimator_count(), 20U);
  EXPECT_LT(rmse(y, forest.predict(x)), 1.0);
}

TEST(RandomForest, DeterministicPerSeed) {
  Matrix x;
  Vector y;
  make_steps(60, x, y, 0.4);
  RandomForestRegressor a(10, 1.0, 123);
  RandomForestRegressor b(10, 1.0, 123);
  a.fit(x, y);
  b.fit(x, y);
  const Vector pa = a.predict(x);
  const Vector pb = b.predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
  }
}

TEST(AdaBoost, BoostsBeyondWeakLearner) {
  Matrix x;
  Vector y;
  make_smooth(250, x, y);
  TreeParams weak_params;
  weak_params.max_depth = 3;
  DecisionTreeRegressor weak(weak_params);
  weak.fit(x, y);
  AdaBoostRegressor boosted(30);
  boosted.fit(x, y);
  EXPECT_GT(boosted.estimator_count(), 1U);
  EXPECT_LT(rmse(y, boosted.predict(x)), rmse(y, weak.predict(x)));
}

TEST(GradientBoosting, DrivesTrainingErrorDown) {
  Matrix x;
  Vector y;
  make_smooth(250, x, y);
  GradientBoostingRegressor few(5);
  GradientBoostingRegressor many(100);
  few.fit(x, y);
  many.fit(x, y);
  EXPECT_LT(rmse(y, many.predict(x)), rmse(y, few.predict(x)));
  EXPECT_LT(rmse(y, many.predict(x)), 0.2);
}

TEST(HistGradientBoosting, FitsSmoothSurface) {
  Matrix x;
  Vector y;
  make_smooth(400, x, y);
  HistGradientBoostingRegressor model;
  model.fit(x, y);
  EXPECT_EQ(model.tree_count(), 100U);
  EXPECT_LT(rmse(y, model.predict(x)), 0.3);
}

TEST(HistGradientBoosting, BinnedSplitsHandleFewDistinctValues) {
  // A feature with only three distinct values must still split cleanly.
  Matrix x(90, 1);
  Vector y(90);
  for (std::size_t i = 0; i < 90; ++i) {
    const double v = static_cast<double>(i % 3);
    x(i, 0) = v;
    y[i] = v * 10.0;
  }
  HistGradientBoostingRegressor model;
  model.fit(x, y);
  const Vector pred = model.predict(x);
  EXPECT_LT(rmse(y, pred), 1.0);
}

TEST(Ensembles, PredictBeforeFitThrows) {
  EXPECT_THROW((void)BaggingRegressor().predict(Matrix{{1.0}}),
               std::logic_error);
  EXPECT_THROW((void)RandomForestRegressor().predict(Matrix{{1.0}}),
               std::logic_error);
  EXPECT_THROW((void)AdaBoostRegressor().predict(Matrix{{1.0}}),
               std::logic_error);
  EXPECT_THROW((void)GradientBoostingRegressor().predict(Matrix{{1.0}}),
               std::logic_error);
  EXPECT_THROW((void)HistGradientBoostingRegressor().predict(Matrix{{1.0}}),
               std::logic_error);
}

// Property: ensemble predictions stay within the convex hull of targets
// (true for mean/median aggregation of tree leaves on training data).
class EnsembleBounds : public ::testing::TestWithParam<int> {};

TEST_P(EnsembleBounds, PredictionsWithinTargetRange) {
  Matrix x;
  Vector y;
  make_steps(120, x, y, 0.5, static_cast<std::uint64_t>(GetParam()));
  double lo = y[0], hi = y[0];
  for (double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  BaggingRegressor bagging(5, static_cast<std::uint64_t>(GetParam()));
  bagging.fit(x, y);
  RandomForestRegressor forest(5, 1.0, static_cast<std::uint64_t>(GetParam()));
  forest.fit(x, y);
  AdaBoostRegressor ada(10, 1.0, static_cast<std::uint64_t>(GetParam()));
  ada.fit(x, y);
  for (const auto* model :
       std::initializer_list<const Regressor*>{&bagging, &forest, &ada}) {
    for (const double p : model->predict(x)) {
      EXPECT_GE(p, lo - 1e-9);
      EXPECT_LE(p, hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnsembleBounds, ::testing::Range(1, 9));

}  // namespace
}  // namespace hp::ml
