// MetricRegistry tests: lock-free counter/gauge/histogram semantics,
// idempotent registration and kind clashes, name-sorted deterministic
// snapshots, log-bucket math, and the multi-threaded hammering test
// that CI runs under ASan/TSan to pin the relaxed-atomic hot path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {
namespace {

TEST(Counter, AddsAndMerges) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, AddSubSet) {
  Gauge g;
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
  g.set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketMath) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 64u);
  EXPECT_EQ(histogram_bucket_limit(0), 0u);
  EXPECT_EQ(histogram_bucket_limit(1), 1u);
  EXPECT_EQ(histogram_bucket_limit(3), 7u);
  EXPECT_EQ(histogram_bucket_limit(64), ~std::uint64_t{0});
}

TEST(Histogram, RecordsAndSummarizes) {
  Histogram h;
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 100u}) h.record(v);
  const HistogramData data = h.data();
  EXPECT_EQ(data.count, 5u);
  EXPECT_EQ(data.sum, 106u);
  EXPECT_EQ(data.min, 0u);
  EXPECT_EQ(data.max, 100u);
  EXPECT_DOUBLE_EQ(data.mean(), 106.0 / 5.0);
  EXPECT_EQ(data.buckets[0], 1u);  // the zero
  EXPECT_EQ(data.buckets[1], 1u);  // 1
  EXPECT_EQ(data.buckets[2], 2u);  // 2, 3
  EXPECT_EQ(data.buckets[7], 1u);  // 100 in [64, 128)
}

TEST(Histogram, PercentileNearestRank) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const HistogramData data = h.data();
  // Exact at the extremes, bucket upper bound in between.
  EXPECT_EQ(data.percentile(0.0), 1u);
  EXPECT_EQ(data.percentile(1.0), 100u);
  // The 50th sample has bit_width 6 => bucket limit 63.
  EXPECT_EQ(data.percentile(0.5), 63u);
  EXPECT_EQ(HistogramData{}.percentile(0.5), 0u);
}

TEST(MetricRegistry, RegistrationIsIdempotent) {
  MetricRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.snapshot().counter_or("x"), 3u);
}

TEST(MetricRegistry, KindClashThrows) {
  MetricRegistry reg;
  (void)reg.counter("m");
  EXPECT_THROW((void)reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("m"), std::invalid_argument);
}

TEST(MetricRegistry, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").add(2);
  reg.histogram("mid").record(7);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[1].name, "mid");
  EXPECT_EQ(snap.entries[2].name, "zeta");
  EXPECT_EQ(snap.find("mid")->histogram.count, 1u);
  EXPECT_EQ(snap.find("absent"), nullptr);
  EXPECT_EQ(snap.counter_or("absent", 9), 9u);
}

TEST(MetricRegistry, GaugesSliceForBridge) {
  MetricRegistry reg;
  reg.gauge("b").set(2);
  reg.gauge("a").set(1);
  reg.counter("c").add(5);  // not a gauge: excluded
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0], (std::pair<std::string, std::int64_t>{"a", 1}));
  EXPECT_EQ(gauges[1], (std::pair<std::string, std::int64_t>{"b", 2}));
}

TEST(MetricRegistry, SameRecordedValuesSameSnapshot) {
  auto record = [](MetricRegistry& reg) {
    reg.counter("pkts").add(100);
    reg.gauge("depth").add(12);
    for (std::uint64_t v = 1; v <= 32; ++v) reg.histogram("lat").record(v);
  };
  MetricRegistry a, b;
  record(a);
  record(b);
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

// The ASan/TSan matrix target: many threads hammer the same three
// metrics through the relaxed per-shard cells; the merged totals must
// be exact regardless of shard assignment.
TEST(MetricRegistry, ConcurrentRecordingIsLossless) {
  MetricRegistry reg;
  Counter& counter = reg.counter("c");
  Gauge& gauge = reg.gauge("g");
  Histogram& hist = reg.histogram("h");

  constexpr unsigned kThreads = 2 * kShards;  // force shard sharing
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &gauge, &hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
        gauge.add(2);
        gauge.sub(1);
        hist.record(i & 0xFF);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(gauge.value(),
            static_cast<std::int64_t>(kThreads * kPerThread));
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  EXPECT_EQ(data.max, 255u);
  // Concurrent sums must equal the single-threaded equivalent.
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) expected_sum += i & 0xFF;
  EXPECT_EQ(data.sum, kThreads * expected_sum);
}

}  // namespace
}  // namespace hp::obs
