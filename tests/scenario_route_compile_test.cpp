// Tree-incremental route compiler: parity against the per-path
// baseline across every topology family, subtree-scoped recompilation
// after link failures, and compile-count instrumentation proving
// fail_link touches only the routes that crossed the dead link.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "netsim/paths.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/shard.hpp"
#include "scenario/topologies.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;

/// Compare every ordered router pair of `tree_compiled` (filled via
/// compile_all_pairs / fail_link repair) against a per-path baseline
/// fabric in the same topology state: bit-identical labels, ids, paths
/// and expectations, including unreachable pairs.
void expect_all_pairs_parity(BuiltFabric& tree_compiled,
                             BuiltFabric& baseline) {
  const auto& routers = tree_compiled.routers();
  for (const NodeIndex src : routers) {
    for (const NodeIndex dst : routers) {
      if (src == dst) continue;
      const CompiledRoute* t = tree_compiled.route(src, dst);
      const CompiledRoute* b = baseline.route(src, dst);
      ASSERT_EQ(t == nullptr, b == nullptr)
          << "reachability diverges for " << src << " -> " << dst;
      if (t == nullptr) continue;
      EXPECT_EQ(t->id.value, b->id.value)
          << "routeID diverges for " << src << " -> " << dst;
      EXPECT_EQ(t->label, b->label);
      EXPECT_EQ(t->ingress, b->ingress);
      EXPECT_EQ(t->expected, b->expected);
      EXPECT_EQ(t->path, b->path);
    }
  }
}

struct Family {
  std::string name;
  netsim::Topology topo;
};

std::vector<Family> families() {
  std::vector<Family> out;
  out.push_back({"ring16", make_ring(16)});
  out.push_back({"ring33", make_ring(33)});
  out.push_back({"torus4x4", make_torus(4, 4)});
  out.push_back({"torus3x6", make_torus(3, 6)});
  out.push_back({"leaf_spine3x5_hosts", make_leaf_spine(3, 5, 2)});
  out.push_back({"fat_tree4", make_fat_tree(4, true)});
  out.push_back({"random_regular16d3", make_random_regular(16, 3, 7)});
  return out;
}

TEST(TreeCompile, AllPairsMatchesPerPathBaselineAcrossFamilies) {
  for (auto& [name, topo] : families()) {
    SCOPED_TRACE(name);
    BuiltFabric tree_compiled(topo);
    BuiltFabric baseline(topo);
    const std::size_t n = tree_compiled.router_count();
    const std::size_t written = tree_compiled.compile_all_pairs();
    EXPECT_EQ(written, n * (n - 1));  // all families here are connected
    EXPECT_EQ(tree_compiled.cached_route_count(), written);
    // Lookups must hit the cache, not recompile.
    const std::size_t compiled_before =
        tree_compiled.compile_stats().routes_compiled;
    expect_all_pairs_parity(tree_compiled, baseline);
    EXPECT_EQ(tree_compiled.compile_stats().routes_compiled, compiled_before);
  }
}

TEST(TreeCompile, ParallelCompilationIsIdentical) {
  for (auto& [name, topo] : families()) {
    SCOPED_TRACE(name);
    BuiltFabric serial(topo);
    BuiltFabric parallel(topo);
    EXPECT_EQ(serial.compile_all_pairs(1), parallel.compile_all_pairs(4));
    for (const NodeIndex src : serial.routers()) {
      for (const NodeIndex dst : serial.routers()) {
        if (src == dst) continue;
        const CompiledRoute* s = serial.route(src, dst);
        const CompiledRoute* p = parallel.route(src, dst);
        ASSERT_NE(s, nullptr);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(s->id.value, p->id.value);
        EXPECT_EQ(s->path, p->path);
      }
    }
  }
}

TEST(TreeCompile, PostFailLinkRepairKeepsParity) {
  for (auto& [name, topo] : families()) {
    SCOPED_TRACE(name);
    BuiltFabric tree_compiled(topo);
    tree_compiled.compile_all_pairs();
    BuiltFabric baseline(topo);

    // Fail the duplex link between the first router and its first
    // router neighbour (exists in every family).
    const NodeIndex a = tree_compiled.routers().front();
    NodeIndex b = netsim::kInvalidIndex;
    for (const auto l : topo.outgoing(a)) {
      const NodeIndex peer = topo.link(l).to;
      if (topo.node(peer).kind == netsim::NodeKind::kRouter) {
        b = peer;
        break;
      }
    }
    ASSERT_NE(b, netsim::kInvalidIndex);
    const auto affected = tree_compiled.fail_link(a, b);
    EXPECT_FALSE(affected.empty());  // at least a->b crossed it
    (void)baseline.fail_link(a, b);
    expect_all_pairs_parity(tree_compiled, baseline);
  }
}

TEST(TreeCompile, SubtreeCompileWalksOnlyRequestedBranches) {
  const auto topo = make_ring(8);
  BuiltFabric built(topo);
  const NodeIndex r0 = topo.index_of("r0");
  const std::vector<NodeIndex> dsts{topo.index_of("r2"), topo.index_of("r3")};
  EXPECT_EQ(built.compile_subtree(r0, dsts), 2u);
  EXPECT_EQ(built.cached_route_count(), 2u);
  const CompileStats& stats = built.compile_stats();
  EXPECT_EQ(stats.routes_compiled, 2u);
  EXPECT_EQ(stats.trees_built, 1u);
  // Union of tree paths r0->r2 and r0->r3 is r0-r1-r2-r3: three descend
  // folds plus one egress fold per requested destination.
  EXPECT_EQ(stats.crt_steps, 5u);
  // The compiled entries are exactly what route() would have built.
  BuiltFabric baseline(topo);
  for (const NodeIndex dst : dsts) {
    const CompiledRoute* got = built.route(r0, dst);
    const CompiledRoute* want = baseline.route(r0, dst);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->id.value, want->id.value);
    EXPECT_EQ(got->path, want->path);
  }
  // Unreachable / degenerate destinations are skipped, not compiled.
  EXPECT_EQ(built.compile_subtree(r0, std::vector<NodeIndex>{r0}), 0u);
}

TEST(TreeCompile, FailLinkRecompilesOnlyCrossingRoutes) {
  // leaf-spine(2, 4): failing leaf3<->spine1 severs exactly the two
  // routes using that direct link (every other pair detours through
  // spine0 or reaches leaf3 via spine0 already, by Dijkstra pop order).
  const auto topo = make_leaf_spine(2, 4);
  BuiltFabric built(topo);
  built.compile_all_pairs();
  const std::size_t routers = built.router_count();
  EXPECT_EQ(built.cached_tree_count(), routers);

  const NodeIndex leaf3 = topo.index_of("leaf3");
  const NodeIndex spine1 = topo.index_of("spine1");
  const NodeIndex leaf0 = topo.index_of("leaf0");
  const CompiledRoute* untouched = built.route(leaf0, leaf3);
  ASSERT_NE(untouched, nullptr);
  const auto untouched_id = untouched->id.value;

  const CompileStats before = built.compile_stats();
  const auto affected = built.fail_link(leaf3, spine1);
  const CompileStats after = built.compile_stats();

  // Exactly the crossing routes were recompiled -- no full flush.
  std::set<NodeIndex> affected_sources;
  for (const auto& [src, dst] : affected) affected_sources.insert(src);
  EXPECT_EQ(after.routes_compiled - before.routes_compiled, affected.size());
  EXPECT_EQ(after.trees_built - before.trees_built, affected_sources.size());
  EXPECT_LT(affected_sources.size(), routers);
  EXPECT_EQ(built.cached_tree_count(), routers);  // repaired, not flushed

  // The unaffected cached entry survived in place (same address, same
  // label), proving the cache was not rebuilt wholesale.
  const CompiledRoute* still = built.route(leaf0, leaf3);
  EXPECT_EQ(still, untouched);
  EXPECT_EQ(still->id.value, untouched_id);

  // The severed pair detours leaf3 -> spine0 -> leaf -> spine1.
  const CompiledRoute* detour = built.route(spine1, leaf3);
  ASSERT_NE(detour, nullptr);
  EXPECT_EQ(detour->path.size(), 3u);
  EXPECT_TRUE(std::ranges::count(affected,
                                 std::pair<NodeIndex, NodeIndex>{spine1,
                                                                 leaf3}) > 0);
}

TEST(TreeCompile, DisconnectingFailureEvictsInsteadOfRepairing) {
  const auto topo = make_leaf_spine(1, 3);  // spine0 is a cut vertex
  BuiltFabric built(topo);
  built.compile_all_pairs();
  const NodeIndex leaf2 = topo.index_of("leaf2");
  const NodeIndex spine0 = topo.index_of("spine0");
  const auto affected = built.fail_link(leaf2, spine0);
  // Every pair involving leaf2 crossed its only access link.
  EXPECT_EQ(affected.size(), 6u);
  for (const NodeIndex other : built.routers()) {
    if (other == leaf2) continue;
    EXPECT_EQ(built.route(leaf2, other), nullptr);
    EXPECT_EQ(built.route(other, leaf2), nullptr);
  }
  // Pairs not involving leaf2 still route.
  EXPECT_NE(built.route(topo.index_of("leaf0"), topo.index_of("leaf1")),
            nullptr);
}

TEST(TreeCompile, CompileAllPairsReusesCachedTreesAndOverwritesCleanly) {
  const auto topo = make_torus(4, 4);
  BuiltFabric built(topo);
  ASSERT_NE(built.route(0, 5), nullptr);  // seeds one tree lazily
  EXPECT_EQ(built.compile_stats().trees_built, 1u);
  const std::size_t n = built.router_count();
  EXPECT_EQ(built.compile_all_pairs(), n * (n - 1));
  // One tree per source total; the seeded one was reused, and the
  // route cache holds each pair exactly once despite the overwrite.
  EXPECT_EQ(built.compile_stats().trees_built, n);
  EXPECT_EQ(built.cached_route_count(), n * (n - 1));
}

TEST(ShardBounds, PartitionsEveryItemExactlyOnce) {
  for (const std::size_t total : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const auto [begin, end] = shard_bounds(total, w, workers);
        EXPECT_EQ(begin, prev_end);
        EXPECT_LE(begin, end);
        covered += end - begin;
        prev_end = end;
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ShardBounds, NoOverflowNearSizeMax) {
  // total * (w + 1) overflows std::size_t for totals within a factor of
  // `workers` of SIZE_MAX; the 128-bit intermediate must keep the
  // partition exact (contiguous, complete, balanced to within one).
  const std::size_t total = std::numeric_limits<std::size_t>::max() - 7;
  for (const std::size_t workers : {2u, 3u, 16u}) {
    std::size_t prev_end = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const auto [begin, end] = shard_bounds(total, w, workers);
      EXPECT_EQ(begin, prev_end) << "workers=" << workers << " w=" << w;
      EXPECT_LE(begin, end);
      const std::size_t size = end - begin;
      EXPECT_LE(size, total / workers + 1);
      EXPECT_GE(size, total / workers);
      prev_end = end;
    }
    EXPECT_EQ(prev_end, total) << "workers=" << workers;
  }
}

TEST(TreeChildren, MirrorsViaParents) {
  const auto topo = make_ring(6);
  const auto tree =
      netsim::shortest_path_tree(topo, 0, netsim::PathMetric::kHopCount);
  const auto children = netsim::tree_children(tree, topo);
  std::size_t edges = 0;
  for (NodeIndex parent = 0; parent < children.size(); ++parent) {
    for (const NodeIndex child : children[parent]) {
      EXPECT_EQ(topo.link(tree.via[child]).from, parent);
      EXPECT_EQ(topo.link(tree.via[child]).to, child);
      ++edges;
    }
  }
  EXPECT_EQ(edges, topo.node_count() - 1);  // spanning tree of the ring
}

}  // namespace
}  // namespace hp::scenario
