// Multi-segment routes end to end: every registry family forwards
// bit-identically via single-label vs segmented walks, deep ring/torus
// topologies compile to <= 64-bit segments with tree/per-path parity,
// fail_link repairs a route whose waypoint node died, and ring-1024 /
// torus-32x32 replay entirely on the uint64 fast path -- zero
// unpackable pairs (the old Poly fallback), zero wrong egress, zero
// hop-cap kills.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "netsim/paths.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/topologies.hpp"
#include "scenario/traffic.hpp"

namespace hp::scenario {
namespace {

using netsim::NodeIndex;

/// Step the compiled fold engine by hand -- port_of plus the waypoint
/// re-label rule -- recording the fabric nodes visited.  This is the
/// hop-sequence oracle the segmented fast path must reproduce.
std::vector<std::size_t> fold_walk_nodes(const BuiltFabric& built,
                                         const polka::SegmentedRoute& route,
                                         std::size_t first) {
  const polka::CompiledFabric& fast = built.compiled();
  std::vector<std::size_t> nodes;
  std::size_t seg = 0;
  std::size_t current = first;
  for (std::size_t hop = 0; hop < 8192; ++hop) {
    if (seg < route.waypoints.size() && current == route.waypoints[seg]) ++seg;
    nodes.push_back(current);
    const std::uint32_t port = fast.port_of(route.labels[seg], current);
    const auto peer = built.fabric().neighbour(current, port);
    if (!peer) break;
    current = *peer;
  }
  return nodes;
}

/// The fabric-index node sequence a compiled route's topology path
/// prescribes (source included).
std::vector<std::size_t> path_fabric_nodes(const BuiltFabric& built,
                                           NodeIndex src,
                                           const netsim::Path& path) {
  std::vector<std::size_t> nodes{built.fabric_index(src)};
  for (const netsim::LinkIndex l : path) {
    nodes.push_back(built.fabric_index(built.topology().link(l).to));
  }
  return nodes;
}

/// Full per-route invariants: segments exist, label <=> single segment,
/// the segmented fast-path walk delivers the expected result, and its
/// hop sequence is exactly the compiled topology path.
void expect_segmented_route_exact(BuiltFabric& built, NodeIndex src,
                                  const CompiledRoute& route,
                                  std::size_t max_hops) {
  ASSERT_FALSE(route.segments.labels.empty());
  ASSERT_EQ(route.segments.waypoints.size(),
            route.segments.labels.size() - 1);
  EXPECT_EQ(route.label.has_value(), route.segments.single_label());
  const polka::CompiledFabric& fast = built.compiled();
  const polka::PacketResult got = fast.forward_segmented(
      route.segments.labels, route.segments.waypoints, route.ingress,
      max_hops);
  EXPECT_FALSE(got.ttl_expired);
  EXPECT_EQ(got, route.expected);
  if (route.label) {
    // Where the single-label path exists the two walks must agree
    // bit for bit, packet for packet.
    EXPECT_EQ(fast.forward_one(*route.label, route.ingress, max_hops), got);
    EXPECT_EQ(route.label, route.segments.labels.front());
    EXPECT_EQ(route.id.value.to_uint64(), route.label->bits);
  }
  EXPECT_EQ(fold_walk_nodes(built, route.segments, route.ingress),
            path_fabric_nodes(built, src, route.path));
}

TEST(SegmentedRoutes, EveryRegistryFamilyForwardsIdenticallyBothWays) {
  std::set<std::string> seen_topologies;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    const std::string topo_name = spec.name.substr(0, spec.name.find('/'));
    if (!seen_topologies.insert(topo_name).second) continue;
    SCOPED_TRACE(topo_name);
    BuiltFabric built(build_topology(spec));
    built.compile_all_pairs();
    for (const NodeIndex src : built.routers()) {
      for (const NodeIndex dst : built.routers()) {
        if (src == dst) continue;
        const CompiledRoute* route = built.route(src, dst);
        ASSERT_NE(route, nullptr);
        expect_segmented_route_exact(built, src, *route, 64);
      }
    }
  }
}

/// Deep families: tree-incremental compilation and the per-path
/// baseline must cut identical segments, and every route -- now far
/// past the 64-bit single-label bound -- replays exactly.
TEST(SegmentedRoutes, DeepRingTreeAndPerPathCutIdenticalSegments) {
  const auto topo = make_ring(128);
  BuiltFabric tree_compiled(topo);
  BuiltFabric baseline(topo);
  const std::size_t n = tree_compiled.router_count();
  ASSERT_EQ(tree_compiled.compile_all_pairs(), n * (n - 1));

  std::size_t multi_segment = 0;
  for (const NodeIndex src : tree_compiled.routers()) {
    for (const NodeIndex dst : tree_compiled.routers()) {
      if (src == dst) continue;
      const CompiledRoute* t = tree_compiled.route(src, dst);
      const CompiledRoute* b = baseline.route(src, dst);
      ASSERT_NE(t, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(t->segments, b->segments);
      EXPECT_EQ(t->label, b->label);
      EXPECT_EQ(t->id.value, b->id.value);
      EXPECT_EQ(t->path, b->path);
      multi_segment += !t->segments.single_label();
    }
  }
  // A 128-ring's diameter paths accumulate far more than 64 modulus
  // bits: segmentation must actually engage.
  EXPECT_GT(multi_segment, 0u);

  // Spot-check the longest route end to end.
  const NodeIndex r0 = topo.index_of("r0");
  const NodeIndex r64 = topo.index_of("r64");
  const CompiledRoute* longest = tree_compiled.route(r0, r64);
  ASSERT_NE(longest, nullptr);
  EXPECT_GE(longest->segments.labels.size(), 2u);
  expect_segmented_route_exact(tree_compiled, r0, *longest, 256);
}

TEST(SegmentedRoutes, FailLinkRepairsRouteWhoseWaypointDied) {
  const auto topo = make_ring(128);
  BuiltFabric built(topo);
  built.compile_all_pairs();

  const NodeIndex r0 = topo.index_of("r0");
  const NodeIndex r64 = topo.index_of("r64");
  const CompiledRoute* route = built.route(r0, r64);
  ASSERT_NE(route, nullptr);
  ASSERT_GE(route->segments.waypoints.size(), 1u);

  // Kill the path link *into* the route's first waypoint, so the node
  // the packet would have re-labelled at is no longer on any shortest
  // path for this pair.
  const NodeIndex waypoint =
      built.topo_index(route->segments.waypoints.front());
  netsim::LinkIndex into_waypoint = netsim::kInvalidIndex;
  for (const netsim::LinkIndex l : route->path) {
    if (topo.link(l).to == waypoint) {
      into_waypoint = l;
      break;
    }
  }
  ASSERT_NE(into_waypoint, netsim::kInvalidIndex);
  const NodeIndex from = topo.link(into_waypoint).from;
  const auto affected = built.fail_link(from, waypoint);
  EXPECT_FALSE(affected.empty());

  // The repaired route detours (the ring stays connected), is still
  // segmented, avoids the dead link, and replays exactly.  It matches
  // a from-scratch compile of the degraded topology bit for bit.
  const CompiledRoute* repaired = built.route(r0, r64);
  ASSERT_NE(repaired, nullptr);
  ASSERT_GE(repaired->segments.labels.size(), 2u);
  for (const netsim::LinkIndex l : repaired->path) {
    EXPECT_NE(l, into_waypoint);
  }
  expect_segmented_route_exact(built, r0, *repaired, 256);

  BuiltFabric fresh(topo);
  (void)fresh.fail_link(from, waypoint);
  const CompiledRoute* want = fresh.route(r0, r64);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(repaired->segments, want->segments);
  EXPECT_EQ(repaired->path, want->path);
}

/// The acceptance scenarios: ring-1024 and torus-32x32 streams compile
/// to segmented routes (every label 64-bit by construction) and replay
/// entirely on the uint64 fast path -- no pair is dropped as
/// unpackable (the seed's Poly-fallback symptom), nothing mis-egresses,
/// nothing hits the hop cap.
class DeepTopologyReplay : public ::testing::TestWithParam<const char*> {};

TEST_P(DeepTopologyReplay, StreamsSegmentedTrafficOnTheFastPath) {
  const std::string which = GetParam();
  netsim::Topology topo =
      which == "ring1024" ? make_ring(1024) : make_torus(32, 32);
  BuiltFabric built(std::move(topo));

  TrafficParams params;
  params.pattern = TrafficPattern::kUniformRandom;
  params.packets = 8192;
  params.max_pairs = 64;
  params.seed = 1234;
  PacketStream stream = generate_traffic(built, params);
  ASSERT_EQ(stream.size(), params.packets);
  // Zero Poly-fallback: every sampled pair got a fast-path route.
  EXPECT_EQ(stream.unpackable_pairs, 0u);
  EXPECT_EQ(stream.unreachable_pairs, 0u);
  ASSERT_EQ(stream.seg_refs.size(), stream.pairs.size());

  std::size_t multi_segment_pairs = 0;
  for (const polka::SegmentRef& ref : stream.seg_refs) {
    multi_segment_pairs += ref.label_count > 1;
  }
  EXPECT_GT(multi_segment_pairs, 0u) << which;

  RunnerOptions options;
  options.threads = 2;
  options.max_hops = 2048;
  const ScenarioReport report = ScenarioRunner(options).run(built, stream);
  EXPECT_EQ(report.packets, params.packets);
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_EQ(report.dropped_packets, 0u);
  EXPECT_EQ(report.ttl_expired, 0u);
  EXPECT_GT(report.segmented_packets, 0u);
  EXPECT_GT(report.segment_swaps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Acceptance, DeepTopologyReplay,
                         ::testing::Values("ring1024", "torus32x32"));

TEST(SegmentedRoutes, RunnerRepairsSegmentedPairsMidRun) {
  // A mid-run failure on a deep ring forces segmented pairs onto (still
  // segmented) detours; everything keeps delivering.
  BuiltFabric built(make_ring(192));
  TrafficParams params;
  params.pattern = TrafficPattern::kPermutation;
  params.packets = 4096;
  params.seed = 5;
  PacketStream stream = generate_traffic(built, params);
  EXPECT_EQ(stream.unpackable_pairs, 0u);

  // Fail a link on the first pair's path so at least one compiled
  // route is affected.
  const CompiledRoute* first =
      built.route(stream.pairs.front().src, stream.pairs.front().dst);
  ASSERT_NE(first, nullptr);
  const auto& link = built.topology().link(first->path.front());

  RunnerOptions options;
  options.threads = 2;
  options.max_hops = 512;
  options.failures.push_back(LinkFailure{0.5, link.from, link.to});
  const ScenarioReport report = ScenarioRunner(options).run(built, stream);
  EXPECT_EQ(report.packets + report.dropped_packets, params.packets);
  EXPECT_EQ(report.dropped_packets, 0u);  // a ring survives one cut
  EXPECT_EQ(report.wrong_egress, 0u);
  EXPECT_EQ(report.ttl_expired, 0u);
  EXPECT_GE(report.rerouted_pairs, 1u);
  EXPECT_GT(report.segmented_packets, 0u);
}

TEST(SegmentedRoutes, HopCapKillsAreCountedAsTtlNotDeliveries) {
  // max_hops = 1 cannot deliver any multi-node route: every packet must
  // land in ttl_expired, never in wrong_egress or packets lost.
  BuiltFabric built(make_ring(8));
  TrafficParams params;
  params.pattern = TrafficPattern::kPermutation;
  params.packets = 256;
  params.seed = 2;
  PacketStream stream = generate_traffic(built, params);

  RunnerOptions options;
  options.max_hops = 1;
  const ScenarioReport report = ScenarioRunner(options).run(built, stream);
  EXPECT_EQ(report.packets, params.packets);
  EXPECT_EQ(report.ttl_expired, params.packets);
  EXPECT_EQ(report.wrong_egress, 0u);
}

}  // namespace
}  // namespace hp::scenario
