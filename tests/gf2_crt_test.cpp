// Tests for the GF(2)[t] Chinese Remainder Theorem solver.
#include <algorithm>

#include "gf2/crt.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gf2/irreducible.hpp"

namespace hp::gf2 {
namespace {

TEST(Crt, PaperFigure1System) {
  // s1 = t+1 with port o1 = 1; s2 = t^2+t+1 with o2 = t;
  // s3 = t^3+t+1 with o3 = t^2+t.  The routeID must reproduce each
  // port under mod by the matching node polynomial.
  const std::vector<Congruence> sys{
      {Poly(0b1), Poly(0b11)},
      {Poly(0b10), Poly(0b111)},
      {Poly(0b110), Poly(0b1011)},
  };
  const Poly r = crt(sys);
  EXPECT_EQ(r % Poly(0b11), Poly(0b1));
  EXPECT_EQ(r % Poly(0b111), Poly(0b10));
  EXPECT_EQ(r % Poly(0b1011), Poly(0b110));
  // Solution degree is bounded by the product degree (1 + 2 + 3 = 6).
  EXPECT_LT(r.degree(), 6);
}

TEST(Crt, SingleCongruence) {
  const std::vector<Congruence> sys{{Poly(0b101), Poly(0b1011)}};
  EXPECT_EQ(crt(sys), Poly(0b101));
}

TEST(Crt, ResidueReducedFirst) {
  // Residue with degree >= modulus degree is accepted and reduced.
  const std::vector<Congruence> sys{{Poly(0b11111), Poly(0b111)}};
  const Poly r = crt(sys);
  EXPECT_EQ(r, Poly(0b11111) % Poly(0b111));
}

TEST(Crt, EmptySystemThrows) {
  EXPECT_THROW(crt(std::vector<Congruence>{}), std::domain_error);
}

TEST(Crt, NonCoprimeModuliThrow) {
  const std::vector<Congruence> sys{
      {Poly(0b1), Poly(0b110)},   // t(t+1)
      {Poly(0b10), Poly(0b10)},   // t  -> shares factor t
  };
  EXPECT_THROW(crt(sys), std::domain_error);
}

TEST(Crt, ZeroModulusThrows) {
  const std::vector<Congruence> sys{{Poly(0b1), Poly{}}};
  EXPECT_THROW(crt(sys), std::domain_error);
}

TEST(Crt, AccumulatorMatchesBatch) {
  const std::vector<Congruence> sys{
      {Poly(0b1), Poly(0b11)},
      {Poly(0b10), Poly(0b111)},
      {Poly(0b110), Poly(0b1011)},
  };
  CrtAccumulator acc;
  for (const auto& c : sys) acc.add(c);
  EXPECT_EQ(acc.solution(), crt(sys));
  EXPECT_EQ(acc.modulus(), Poly(0b11) * Poly(0b111) * Poly(0b1011));
}

// Property: for random systems over distinct irreducible moduli, the CRT
// solution satisfies every congruence and is degree-bounded.
class CrtProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrtProperty, SolutionSatisfiesAllCongruences) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const auto moduli = first_irreducible(10, 2);
  std::uniform_int_distribution<std::size_t> count(2, moduli.size());
  const std::size_t n = count(rng);

  std::vector<Congruence> sys;
  int total_degree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Poly& m = moduli[i];
    // Residue: random polynomial of degree < deg(m).
    std::uint64_t mask = (std::uint64_t{1} << m.degree()) - 1;
    sys.push_back(Congruence{Poly(rng() & mask), m});
    total_degree += m.degree();
  }
  const Poly r = crt(sys);
  for (const auto& c : sys) {
    EXPECT_EQ(r % c.modulus, c.residue % c.modulus);
  }
  EXPECT_LT(r.degree(), total_degree);
}

TEST_P(CrtProperty, SolutionIsUnique) {
  // Any two solutions differ by a multiple of the modulus product, so
  // the degree-bounded solution is unique: re-solving a permuted system
  // must give the same answer.
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const auto moduli = first_irreducible(6, 2);
  std::vector<Congruence> sys;
  for (const Poly& m : moduli) {
    std::uint64_t mask = (std::uint64_t{1} << m.degree()) - 1;
    sys.push_back(Congruence{Poly(rng() & mask), m});
  }
  const Poly r1 = crt(sys);
  std::reverse(sys.begin(), sys.end());
  const Poly r2 = crt(sys);
  EXPECT_EQ(r1, r2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrtProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace hp::gf2
