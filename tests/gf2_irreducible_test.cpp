// Tests for irreducibility testing and enumeration.

#include "gf2/irreducible.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hp::gf2 {
namespace {

TEST(Irreducible, DegreeOneAlwaysIrreducible) {
  EXPECT_TRUE(is_irreducible(Poly(0b10)));  // t
  EXPECT_TRUE(is_irreducible(Poly(0b11)));  // t + 1
}

TEST(Irreducible, KnownIrreducibles) {
  EXPECT_TRUE(is_irreducible(Poly(0b111)));      // t^2+t+1
  EXPECT_TRUE(is_irreducible(Poly(0b1011)));     // t^3+t+1
  EXPECT_TRUE(is_irreducible(Poly(0b1101)));     // t^3+t^2+1
  EXPECT_TRUE(is_irreducible(Poly(0b10011)));    // t^4+t+1
  EXPECT_TRUE(is_irreducible(Poly(0b100101)));   // t^5+t^2+1
  EXPECT_TRUE(is_irreducible(Poly(0b1000011)));  // t^6+t+1
}

TEST(Irreducible, KnownReducibles) {
  EXPECT_FALSE(is_irreducible(Poly(0b101)));    // (t+1)^2
  EXPECT_FALSE(is_irreducible(Poly(0b110)));    // t(t+1)
  EXPECT_FALSE(is_irreducible(Poly(0b1111)));   // (t+1)(t^2+t+1)
  EXPECT_FALSE(is_irreducible(Poly(0b10101)));  // (t^2+t+1)^2
  EXPECT_FALSE(is_irreducible(Poly{}));
  EXPECT_FALSE(is_irreducible(Poly(1)));
}

TEST(Irreducible, PaperNodeIds) {
  // Fig 1 of the paper: s1 = t+1, s2 = t^2+t+1, s3 = t^3+t+1.
  EXPECT_TRUE(is_irreducible(Poly(0b11)));
  EXPECT_TRUE(is_irreducible(Poly(0b111)));
  EXPECT_TRUE(is_irreducible(Poly(0b1011)));
}

class IrreducibleCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(IrreducibleCount, EnumerationMatchesNecklaceFormula) {
  const unsigned d = GetParam();
  const auto polys = irreducible_of_degree(d);
  EXPECT_EQ(polys.size(), count_irreducible(d));
  for (const Poly& p : polys) {
    EXPECT_EQ(p.degree(), static_cast<int>(d));
    EXPECT_TRUE(is_irreducible(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, IrreducibleCount,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U,
                                           9U, 10U, 11U, 12U));

TEST(Irreducible, CountFormulaKnownValues) {
  // OEIS A001037 (monic irreducible over GF(2)): 2,1,2,3,6,9,18,30,...
  EXPECT_EQ(count_irreducible(1), 2U);
  EXPECT_EQ(count_irreducible(2), 1U);
  EXPECT_EQ(count_irreducible(3), 2U);
  EXPECT_EQ(count_irreducible(4), 3U);
  EXPECT_EQ(count_irreducible(5), 6U);
  EXPECT_EQ(count_irreducible(6), 9U);
  EXPECT_EQ(count_irreducible(7), 18U);
  EXPECT_EQ(count_irreducible(8), 30U);
}

TEST(Irreducible, FirstIrreducibleProducesDistinct) {
  const auto polys = first_irreducible(40, 2);
  EXPECT_EQ(polys.size(), 40U);
  std::set<Poly> unique(polys.begin(), polys.end());
  EXPECT_EQ(unique.size(), 40U);
  for (const Poly& p : polys) {
    EXPECT_GE(p.degree(), 2);
    EXPECT_TRUE(is_irreducible(p));
  }
}

TEST(Irreducible, PairwiseCoprimeByConstruction) {
  const auto polys = first_irreducible(12, 2);
  for (std::size_t i = 0; i < polys.size(); ++i) {
    for (std::size_t j = i + 1; j < polys.size(); ++j) {
      EXPECT_TRUE(gcd(polys[i], polys[j]).is_one())
          << polys[i].to_string() << " vs " << polys[j].to_string();
    }
  }
}

TEST(Irreducible, ScanCapThrows) {
  EXPECT_THROW(irreducible_of_degree(25), std::invalid_argument);
}

}  // namespace
}  // namespace hp::gf2
