// Tests for routeID computation and per-node port recovery.

#include "polka/route.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gf2/irreducible.hpp"
#include "polka/node_id.hpp"

namespace hp::polka {
namespace {

using gf2::Poly;

TEST(MinDegreeForPorts, Bounds) {
  EXPECT_EQ(min_degree_for_ports(1), 1U);
  EXPECT_EQ(min_degree_for_ports(2), 1U);
  EXPECT_EQ(min_degree_for_ports(3), 2U);
  EXPECT_EQ(min_degree_for_ports(4), 2U);
  EXPECT_EQ(min_degree_for_ports(5), 3U);
  EXPECT_EQ(min_degree_for_ports(9), 4U);
  EXPECT_EQ(min_degree_for_ports(256), 8U);
}

TEST(NodeIdAllocator, DistinctIrreducibleIds) {
  NodeIdAllocator alloc;
  const NodeId a = alloc.allocate("A", 4);
  const NodeId b = alloc.allocate("B", 4);
  const NodeId c = alloc.allocate("C", 8);
  EXPECT_NE(a.poly, b.poly);
  EXPECT_NE(a.poly, c.poly);
  EXPECT_TRUE(gf2::is_irreducible(a.poly));
  EXPECT_TRUE(gf2::is_irreducible(b.poly));
  EXPECT_TRUE(gf2::is_irreducible(c.poly));
  // Degree must accommodate the port space.
  EXPECT_GE(a.poly.degree(), 2);
  EXPECT_GE(c.poly.degree(), 3);
}

TEST(NodeIdAllocator, ZeroPortsRejected) {
  NodeIdAllocator alloc;
  EXPECT_THROW(alloc.allocate("X", 0), std::invalid_argument);
}

TEST(NodeIdAllocator, ManyNodesStayCoprime) {
  NodeIdAllocator alloc;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) {
    nodes.push_back(alloc.allocate("n" + std::to_string(i), 4));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      EXPECT_TRUE(gcd(nodes[i].poly, nodes[j].poly).is_one());
    }
  }
}

TEST(RouteId, PaperFigure1) {
  // Fig 1: three nodes with ports o1=1, o2=t (port 2), o3=t^2+t (port 6).
  const NodeId s1{"s1", Poly(0b11), 2};
  const NodeId s2{"s2", Poly(0b111), 4};
  const NodeId s3{"s3", Poly(0b1011), 8};
  const RouteId r = compute_route_id({{s1, 1}, {s2, 2}, {s3, 6}});
  EXPECT_EQ(output_port(r, s1), 1U);
  EXPECT_EQ(output_port(r, s2), 2U);
  EXPECT_EQ(output_port(r, s3), 6U);
  EXPECT_LE(r.bit_length(), 6U);  // deg < 1+2+3
}

TEST(RouteId, PortMustFitNodeDegree) {
  const NodeId small{"s", Poly(0b11), 2};  // degree 1: ports {0,1}
  EXPECT_THROW(compute_route_id({{small, 2}}), std::domain_error);
}

TEST(RouteId, EmptyPathRejected) {
  EXPECT_THROW(compute_route_id({}), std::invalid_argument);
}

TEST(RouteId, DuplicateNodeRejected) {
  // Same node appearing twice means non-coprime moduli: CRT must refuse
  // (PolKA cannot encode loops through one node in a single routeID).
  const NodeId s{"s", Poly(0b111), 4};
  EXPECT_THROW(compute_route_id({{s, 1}, {s, 2}}), std::domain_error);
}

TEST(RouteId, PortPolynomialRoundTrip) {
  for (unsigned p = 0; p < 64; ++p) {
    EXPECT_EQ(polynomial_port(port_polynomial(p)), p);
  }
}

// Property: random paths through randomly allocated nodes always
// recover every hop's port, for varying path lengths.
class RouteRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RouteRecovery, AllPortsRecovered) {
  const std::size_t hops = GetParam();
  std::mt19937_64 rng(hops * 7919);
  NodeIdAllocator alloc;
  std::vector<Hop> path;
  for (std::size_t i = 0; i < hops; ++i) {
    const unsigned ports = 2 + static_cast<unsigned>(rng() % 15);
    NodeId node = alloc.allocate("n" + std::to_string(i), ports);
    path.push_back(Hop{std::move(node), static_cast<unsigned>(rng() % ports)});
  }
  const RouteId r = compute_route_id(path);
  int total_degree = 0;
  for (const Hop& hop : path) {
    EXPECT_EQ(output_port(r, hop.node), hop.port) << hop.node.name;
    total_degree += hop.node.poly.degree();
  }
  EXPECT_LT(r.value.degree(), total_degree);
}

INSTANTIATE_TEST_SUITE_P(PathLengths, RouteRecovery,
                         ::testing::Values(1U, 2U, 3U, 5U, 8U, 12U, 20U,
                                           32U));

}  // namespace
}  // namespace hp::polka
