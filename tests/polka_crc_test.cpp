// Tests for the CRC remainder engines against exact polynomial division.

#include "polka/crc.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gf2/irreducible.hpp"

namespace hp::polka {
namespace {

using gf2::Poly;

Poly random_poly(std::mt19937_64& rng, int max_degree) {
  Poly p;
  std::uniform_int_distribution<int> deg(0, max_degree);
  const int d = deg(rng);
  for (int i = 0; i < d; ++i) {
    if (rng() & 1) p.set_coeff(static_cast<unsigned>(i), true);
  }
  p.set_coeff(static_cast<unsigned>(d), true);
  return p;
}

TEST(BitSerialCrc, MatchesEuclideanRemainderPaperExample) {
  const Poly s2(0b111);
  const BitSerialCrc crc(s2);
  const Poly route = Poly::from_binary_string("10000");
  EXPECT_EQ(crc.remainder(route), route % s2);
  EXPECT_EQ(crc.remainder(route).to_uint64(), 2U);
}

TEST(BitSerialCrc, ZeroDividend) {
  const BitSerialCrc crc(Poly(0b1011));
  EXPECT_TRUE(crc.remainder(Poly{}).is_zero());
}

TEST(BitSerialCrc, DividendSmallerThanGenerator) {
  const BitSerialCrc crc(Poly(0b10011));
  EXPECT_EQ(crc.remainder(Poly(0b101)), Poly(0b101));
}

TEST(BitSerialCrc, RejectsConstantGenerator) {
  EXPECT_THROW(BitSerialCrc(Poly(1)), std::invalid_argument);
  EXPECT_THROW(BitSerialCrc(Poly{}), std::invalid_argument);
}

TEST(TableCrc, MatchesEuclideanRemainderPaperExample) {
  const Poly s2(0b111);
  const TableCrc crc(s2);
  const Poly route = Poly::from_binary_string("10000");
  EXPECT_EQ(crc.remainder(route), route % s2);
}

TEST(TableCrc, DegreeBoundsEnforced) {
  EXPECT_THROW(TableCrc(Poly(1)), std::invalid_argument);
  EXPECT_THROW(TableCrc(Poly::monomial(57) + Poly(1)), std::invalid_argument);
  EXPECT_NO_THROW(TableCrc(Poly::monomial(56) + Poly(0b11)));
}

TEST(TableCrc, StandardCrc8Polynomial) {
  // CRC-8-ATM generator t^8 + t^2 + t + 1.
  const Poly g(0x107);
  const TableCrc crc(g);
  std::mt19937_64 rng(13);
  for (int i = 0; i < 200; ++i) {
    const Poly msg = random_poly(rng, 120);
    EXPECT_EQ(crc.remainder(msg), msg % g);
  }
}

// Property: both engines agree with exact division for random
// generator/dividend pairs across a sweep of generator degrees.
class CrcAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(CrcAgreement, EnginesMatchExactDivision) {
  const unsigned degree = GetParam();
  std::mt19937_64 rng(degree * 977 + 11);
  const auto gens = gf2::irreducible_of_degree(degree);
  ASSERT_FALSE(gens.empty());
  const Poly& g = gens[rng() % gens.size()];
  const BitSerialCrc bit(g);
  const TableCrc table(g);
  for (int i = 0; i < 60; ++i) {
    const Poly msg = random_poly(rng, 250);
    const Poly want = msg % g;
    EXPECT_EQ(bit.remainder(msg), want) << "degree=" << degree;
    EXPECT_EQ(table.remainder(msg), want) << "degree=" << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(GeneratorDegrees, CrcAgreement,
                         ::testing::Values(1U, 2U, 3U, 4U, 5U, 6U, 7U, 8U,
                                           9U, 12U, 16U, 20U));

TEST(CrcAgreement, LongRouteIds) {
  // routeIDs grow with path length; engines must stay exact for
  // multi-hundred-bit dividends.
  const Poly g = gf2::irreducible_of_degree(16).front();
  const BitSerialCrc bit(g);
  const TableCrc table(g);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 20; ++i) {
    const Poly msg = random_poly(rng, 900);
    const Poly want = msg % g;
    EXPECT_EQ(bit.remainder(msg), want);
    EXPECT_EQ(table.remainder(msg), want);
  }
}

}  // namespace
}  // namespace hp::polka
