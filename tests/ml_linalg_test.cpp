// Tests for the dense linear algebra kernels.

#include "ml/linalg.hpp"

#include <gtest/gtest.h>

#include <random>

namespace hp::ml {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_EQ(m.cols(), 2U);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
  EXPECT_THROW(Matrix({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, RowColTranspose) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.col(2), (Vector{3, 6}));
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, RowsSubsetAllowsDuplicates) {
  const Matrix m{{1, 1}, {2, 2}, {3, 3}};
  const Matrix s = m.rows_subset({2, 0, 2});
  EXPECT_EQ(s.rows(), 3U);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 3.0);
}

TEST(LinAlg, MatVec) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(matvec(m, {1, 1}), (Vector{3, 7}));
  EXPECT_THROW(matvec(m, {1, 2, 3}), std::invalid_argument);
}

TEST(LinAlg, MatMul) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 1}, {1, 0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(LinAlg, GramMatchesExplicit) {
  const Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const Matrix g = gram(a);
  const Matrix want = matmul(a.transposed(), a);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), want(i, j), 1e-12);
    }
  }
}

TEST(LinAlg, LuSolveIdentity) {
  const Matrix a{{2, 0}, {0, 4}};
  const Vector x = lu_solve(a, {4, 8});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinAlg, LuSolveNeedsPivoting) {
  // Zero pivot at (0,0): requires the row swap.
  const Matrix a{{0, 1}, {1, 0}};
  const Vector x = lu_solve(a, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinAlg, LuSolveSingularThrows) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(lu_solve(a, {1, 2}), std::domain_error);
}

TEST(LinAlg, CholeskyRoundTrip) {
  const Matrix a{{4, 2}, {2, 3}};
  const Matrix l = cholesky(a);
  // L L^T == A.
  const Matrix back = matmul(l, l.transposed());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(back(i, j), a(i, j), 1e-12);
    }
  }
}

TEST(LinAlg, CholeskySolveMatchesLu) {
  const Matrix a{{4, 1, 0}, {1, 5, 2}, {0, 2, 6}};
  const Vector b{1, 2, 3};
  const Vector via_chol = cholesky_solve(cholesky(a), b);
  const Vector via_lu = lu_solve(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(via_chol[i], via_lu[i], 1e-10);
  }
}

TEST(LinAlg, CholeskyRejectsIndefinite) {
  const Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), std::domain_error);
}

TEST(LinAlg, LeastSquaresRecoversLine) {
  // y = 3x + 2, exactly.
  Matrix x(5, 1);
  Vector y(5);
  for (int i = 0; i < 5; ++i) {
    x(static_cast<std::size_t>(i), 0) = i;
    y[static_cast<std::size_t>(i)] = 3.0 * i + 2.0;
  }
  const Vector w = least_squares(x, y);
  EXPECT_NEAR(w[0], 3.0, 1e-6);
  EXPECT_NEAR(w[1], 2.0, 1e-6);
}

TEST(LinAlg, LeastSquaresRidgeShrinks) {
  Matrix x(6, 1);
  Vector y(6);
  std::mt19937_64 rng(5);
  std::normal_distribution<double> noise(0.0, 0.01);
  for (int i = 0; i < 6; ++i) {
    x(static_cast<std::size_t>(i), 0) = i;
    y[static_cast<std::size_t>(i)] = 5.0 * i + noise(rng);
  }
  const Vector free_fit = least_squares(x, y, 0.0);
  const Vector ridge_fit = least_squares(x, y, 100.0);
  EXPECT_LT(std::abs(ridge_fit[0]), std::abs(free_fit[0]));
}

TEST(LinAlg, Statistics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(variance({2, 2, 2}), 0.0);
  EXPECT_NEAR(variance({1, 3}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_THROW((void)median({}), std::invalid_argument);
}

TEST(LinAlg, ColumnStatistics) {
  const Matrix m{{1, 10}, {3, 30}};
  EXPECT_EQ(col_means(m), (Vector{2, 20}));
  const Vector var = col_variances(m);
  EXPECT_NEAR(var[0], 1.0, 1e-12);
  EXPECT_NEAR(var[1], 100.0, 1e-12);
}

// Property: LU solve then multiply back reproduces b.
class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, SolveRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> val(-5.0, 5.0);
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 8;
  Matrix a(n, n);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = val(rng);
    a(i, i) += 10.0;  // diagonally dominant: comfortably nonsingular
    b[i] = val(rng);
  }
  const Vector x = lu_solve(a, b);
  const Vector back = matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace hp::ml
