// Fixed-width GF(2) kernels: fuzz parity against the arbitrary-degree
// Poly reference, try_inverse_mod, and the CrtAccumulator fast path
// (including the spill to Poly past 128 accumulated bits).

#include "gf2/poly64.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "gf2/crt.hpp"
#include "gf2/irreducible.hpp"
#include "gf2/poly.hpp"

namespace hp::gf2 {
namespace {

Poly from_words(std::uint64_t lo, std::uint64_t hi) {
  return Poly(lo) + Poly(hi).shifted_left(64);
}

Poly from_p128(fixed::Poly128 a) { return from_words(a.lo, a.hi); }

TEST(Poly64, DegreeMatchesPoly) {
  EXPECT_EQ(fixed::degree(std::uint64_t{0}), -1);
  EXPECT_EQ(fixed::degree(std::uint64_t{1}), 0);
  EXPECT_EQ(fixed::degree(~std::uint64_t{0}), 63);
  EXPECT_EQ(fixed::degree(fixed::Poly128{0, 1}), 64);
  EXPECT_EQ(fixed::degree(fixed::Poly128{5, 0}), 2);
  EXPECT_EQ(fixed::degree(fixed::Poly128{}), -1);
}

TEST(Poly64, ClmulFuzzMatchesPolyProduct) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_EQ(from_p128(fixed::clmul(a, b)), Poly(a) * Poly(b));
  }
}

TEST(Poly64, ModFuzzMatchesPolyRemainder) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t m = rng() | 1;  // nonzero
    EXPECT_EQ(Poly(fixed::mod(a, m)), Poly(a) % Poly(m));
  }
}

TEST(Poly64, Mod128FuzzMatchesPolyRemainder) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 500; ++i) {
    const fixed::Poly128 a{rng(), rng()};
    // Exercise small and large moduli alike.
    const std::uint64_t m = (rng() >> (rng() % 60)) | 1;
    EXPECT_EQ(Poly(fixed::mod(a, m)), from_p128(a) % Poly(m));
  }
}

TEST(Poly64, MulmodFuzzMatchesPoly) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const std::uint64_t m = rng() | 1;
    EXPECT_EQ(Poly(fixed::mulmod(a, b, m)), mulmod(Poly(a), Poly(b), Poly(m)));
  }
}

TEST(Poly64, Mul128x64FuzzWithinDegreeBound) {
  std::mt19937_64 rng(19);
  for (int i = 0; i < 500; ++i) {
    const fixed::Poly128 a{rng(), rng() >> (1 + rng() % 62)};
    const int budget = 127 - fixed::degree(a);
    ASSERT_GE(budget, 1);
    const std::uint64_t b =
        (rng() & ((std::uint64_t{1} << std::min(budget, 63)) - 1)) | 1;
    EXPECT_EQ(from_p128(fixed::mul(a, b)), from_p128(a) * Poly(b));
  }
}

TEST(Poly64, TryInverseFuzzMatchesTryInverseMod) {
  std::mt19937_64 rng(23);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng() >> (rng() % 64);
    const std::uint64_t m = (rng() >> (rng() % 56)) | 1;
    const auto fast = fixed::try_inverse(a, m);
    const auto wide = try_inverse_mod(Poly(a), Poly(m));
    ASSERT_EQ(fast.has_value(), wide.has_value())
        << "a=" << a << " m=" << m;
    if (fast) {
      EXPECT_EQ(Poly(*fast), *wide);
      if (m != 1) {
        EXPECT_TRUE((mulmod(Poly(a), Poly(*fast), Poly(m))).is_one());
      }
    }
  }
}

TEST(Poly64, TryInverseUnitModulus) {
  // Everything is congruent to 0 modulo the unit polynomial; the
  // (degenerate) inverse is 0, exactly as inverse_mod returns.
  EXPECT_EQ(fixed::try_inverse(42, 1), std::optional<fixed::Poly64>{0});
  EXPECT_EQ(inverse_mod(Poly(42), Poly(1)), Poly{});
}

TEST(TryInverseMod, AgreesWithThrowingVersion) {
  const Poly m = Poly(0b10011);  // t^4 + t + 1, irreducible
  const auto inv = try_inverse_mod(Poly(0b110), m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, inverse_mod(Poly(0b110), m));
  // Shared factor t: no inverse, nullopt instead of a throw.
  EXPECT_EQ(try_inverse_mod(Poly(0b10), Poly(0b110)), std::nullopt);
  EXPECT_THROW((void)inverse_mod(Poly(0b10), Poly(0b110)), std::domain_error);
}

// Reference CRT fold in plain Poly arithmetic (the pre-fast-path
// algorithm), used to pin down the accumulator bit-for-bit.
struct ReferenceCrt {
  Poly solution{};
  Poly modulus{1};
  void add(const Congruence& c) {
    const Poly diff = (c.residue + solution) % c.modulus;
    const Poly k = (diff * inverse_mod(modulus, c.modulus)) % c.modulus;
    solution = (solution + modulus * k) % (modulus * c.modulus);
    modulus = modulus * c.modulus;
  }
};

TEST(CrtAccumulatorFast, MatchesReferenceWhileFixedWidth) {
  std::mt19937_64 rng(31);
  const auto moduli = first_irreducible(12, 2);  // degrees 2..5-ish
  CrtAccumulator acc;
  ReferenceCrt ref;
  for (const Poly& m : moduli) {
    if (ref.modulus.degree() + m.degree() > 127) break;
    const std::uint64_t mask = (std::uint64_t{1} << m.degree()) - 1;
    const Congruence c{Poly(rng() & mask), m};
    acc.add(c);
    ref.add(c);
    // Interleaved reads exercise the lazy materialization every fold.
    EXPECT_EQ(acc.solution(), ref.solution);
    EXPECT_EQ(acc.modulus(), ref.modulus);
  }
}

TEST(CrtAccumulatorFast, SpillsToPolyPast128BitsIdentically) {
  std::mt19937_64 rng(37);
  const auto moduli = first_irreducible(40, 4);  // plenty to cross 128 bits
  CrtAccumulator acc;
  ReferenceCrt ref;
  int total_degree = 0;
  for (const Poly& m : moduli) {
    const std::uint64_t mask = (std::uint64_t{1} << m.degree()) - 1;
    const Congruence c{Poly(rng() & mask), m};
    acc.add(c);
    ref.add(c);
    total_degree += m.degree();
    if (total_degree > 300) break;  // well past the spill point
  }
  ASSERT_GT(total_degree, 128);  // the accumulator did spill
  EXPECT_EQ(acc.solution(), ref.solution);
  EXPECT_EQ(acc.modulus(), ref.modulus);
}

TEST(CrtAccumulatorFast, WideResidueIsReducedOnTheFastPath) {
  // Residue of degree >= 64 arriving while the accumulator is still
  // fixed-width must be reduced through Poly, not truncated.
  CrtAccumulator acc;
  const Poly m(0b1011);  // t^3 + t + 1
  const Poly wide_residue = Poly::monomial(70) + Poly(0b10);
  acc.add(Congruence{wide_residue, m});
  EXPECT_EQ(acc.solution(), wide_residue % m);
}

TEST(CrtAccumulatorFast, NonCoprimeThrowsOnBothPaths) {
  {  // fixed-width path
    CrtAccumulator acc;
    acc.add(Congruence{Poly(0b1), Poly(0b111)});
    EXPECT_THROW(acc.add(Congruence{Poly(0b10), Poly(0b111)}),
                 std::domain_error);
  }
  {  // wide path: blow past 128 bits first with coprime moduli
    CrtAccumulator acc;
    const auto moduli = first_irreducible(10, 13);  // 10 x degree 13 = 130
    for (const auto& m : moduli) acc.add(Congruence{Poly(0b1), m});
    EXPECT_GT(acc.modulus().degree(), 127);
    EXPECT_THROW(acc.add(Congruence{Poly(0b1), moduli.front()}),
                 std::domain_error);
  }
}

TEST(CrtAccumulatorFast, ZeroModulusThrows) {
  CrtAccumulator acc;
  EXPECT_THROW(acc.add(Congruence{Poly(0b1), Poly{}}), std::domain_error);
}

}  // namespace
}  // namespace hp::gf2
