// Tests for the synthetic UQ wireless trace, CSV round trip and
// sliding-window supervised transform.

#include "dataset/uq_wireless.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "ml/linalg.hpp"

namespace hp::dataset {
namespace {

TEST(UqTrace, DefaultShapeMatchesPaper) {
  const WirelessTrace trace = generate_uq_trace();
  EXPECT_EQ(trace.size(), 500U);  // 500 seconds at 1 Hz
  EXPECT_DOUBLE_EQ(trace.seconds.front(), 0.0);
  EXPECT_DOUBLE_EQ(trace.seconds.back(), 499.0);
}

TEST(UqTrace, IndoorOutdoorRegimes) {
  const WirelessTrace trace = generate_uq_trace();
  auto mean_between = [&](const std::vector<double>& v, std::size_t a,
                          std::size_t b) {
    double acc = 0.0;
    for (std::size_t i = a; i < b; ++i) acc += v[i];
    return acc / static_cast<double>(b - a);
  };
  // Indoors (0-100): WiFi strong, LTE weak -- the Fig 5b crossover.
  EXPECT_GT(mean_between(trace.wifi, 0, 100),
            mean_between(trace.lte, 0, 100) + 20.0);
  // Outdoors (200-500): LTE overtakes WiFi.
  EXPECT_GT(mean_between(trace.lte, 200, 500),
            mean_between(trace.wifi, 200, 500) + 5.0);
}

TEST(UqTrace, NonNegativeBandwidth) {
  const WirelessTrace trace = generate_uq_trace();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_GE(trace.wifi[i], 0.0);
    EXPECT_GE(trace.lte[i], 0.0);
  }
}

TEST(UqTrace, DeterministicPerSeed) {
  const WirelessTrace a = generate_uq_trace();
  const WirelessTrace b = generate_uq_trace();
  EXPECT_EQ(a.wifi, b.wifi);
  EXPECT_EQ(a.lte, b.lte);
  UqTraceParams params;
  params.seed = 7;
  const WirelessTrace c = generate_uq_trace(params);
  EXPECT_NE(a.wifi, c.wifi);
}

TEST(UqTrace, WifiNoisierThanLte) {
  // The paper's RMSE split (WiFi 14-23 vs LTE 6-8) requires the WiFi
  // column to be the harder target.
  const WirelessTrace trace = generate_uq_trace();
  // Compare first-difference variance (unpredictability proxy).
  auto diff_var = [](const std::vector<double>& v) {
    double acc = 0.0;
    for (std::size_t i = 1; i < v.size(); ++i) {
      const double d = v[i] - v[i - 1];
      acc += d * d;
    }
    return acc / static_cast<double>(v.size() - 1);
  };
  EXPECT_GT(diff_var(trace.wifi), 2.0 * diff_var(trace.lte));
}

TEST(UqTrace, ZeroDurationRejected) {
  UqTraceParams params;
  params.duration_s = 0;
  EXPECT_THROW((void)generate_uq_trace(params), std::invalid_argument);
}

TEST(Csv, RoundTrip) {
  const WirelessTrace trace = generate_uq_trace();
  const std::string path = "/tmp/hp_dataset_test_roundtrip.csv";
  save_csv(trace, path);
  const WirelessTrace loaded = load_csv(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); i += 37) {
    EXPECT_NEAR(loaded.wifi[i], trace.wifi[i], 1e-4);
    EXPECT_NEAR(loaded.lte[i], trace.lte[i], 1e-4);
  }
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW((void)load_csv("/tmp/does_not_exist_hp.csv"),
               std::runtime_error);
}

TEST(Windows, ShapeAndContent) {
  const std::vector<double> series{1, 2, 3, 4, 5, 6};
  const WindowedDataset w = make_windows(series, 3, 1);
  // Windows: [1,2,3]->4, [2,3,4]->5, [3,4,5]->6.
  ASSERT_EQ(w.x.rows(), 3U);
  ASSERT_EQ(w.x.cols(), 3U);
  EXPECT_DOUBLE_EQ(w.x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.x(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(w.y[0], 4.0);
  EXPECT_DOUBLE_EQ(w.y[2], 6.0);
}

TEST(Windows, HorizonShiftsTarget) {
  const std::vector<double> series{1, 2, 3, 4, 5, 6};
  const WindowedDataset w = make_windows(series, 2, 3);
  // [1,2] -> series[1+3] = 5 ; [2,3] -> 6.
  ASSERT_EQ(w.y.size(), 2U);
  EXPECT_DOUBLE_EQ(w.y[0], 5.0);
  EXPECT_DOUBLE_EQ(w.y[1], 6.0);
}

TEST(Windows, PaperWindowSize) {
  const WirelessTrace trace = generate_uq_trace();
  const WindowedDataset w = make_windows(trace.wifi, 10, 1);
  EXPECT_EQ(w.x.cols(), 10U);
  EXPECT_EQ(w.x.rows(), 490U);
}

TEST(Windows, Validation) {
  const std::vector<double> series{1, 2, 3};
  EXPECT_THROW((void)make_windows(series, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_windows(series, 3, 0), std::invalid_argument);
  EXPECT_THROW((void)make_windows(series, 3, 1), std::invalid_argument);
  EXPECT_NO_THROW((void)make_windows(series, 2, 1));
}

}  // namespace
}  // namespace hp::dataset
