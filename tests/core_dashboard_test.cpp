// Tests for the Dashboard rendering helpers.

#include "core/dashboard.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hp::core {
namespace {

using hp::netsim::Sample;

std::vector<Sample> ramp_series() {
  std::vector<Sample> s;
  for (int i = 0; i <= 10; ++i) {
    s.push_back(Sample{static_cast<double>(i), static_cast<double>(i * 2)});
  }
  return s;
}

TEST(Dashboard, SeriesTableDownsamples) {
  const auto series = ramp_series();
  const std::string table = Dashboard::series_table(series, "hdr", 5);
  EXPECT_NE(table.find("hdr"), std::string::npos);
  // Downsampled: fewer data rows than points, but at least a few.
  const auto rows = std::count(table.begin(), table.end(), '\n');
  EXPECT_LE(rows, 8);
  EXPECT_GE(rows, 4);
}

TEST(Dashboard, SeriesTableEmpty) {
  const std::string table = Dashboard::series_table({}, "hdr");
  EXPECT_NE(table.find("(empty)"), std::string::npos);
}

TEST(Dashboard, StripChartBoundsAndWidth) {
  const auto series = ramp_series();
  const std::string chart = Dashboard::strip_chart(series, 20);
  // "[" + 20 chars + "]" plus stats.
  EXPECT_EQ(chart.find('['), 0U);
  EXPECT_EQ(chart.find(']'), 21U);
  EXPECT_NE(chart.find("min=0"), std::string::npos);
  EXPECT_NE(chart.find("max=20"), std::string::npos);
}

TEST(Dashboard, StripChartConstantSeries) {
  std::vector<Sample> flat(5, Sample{0.0, 7.0});
  for (int i = 0; i < 5; ++i) flat[static_cast<std::size_t>(i)].t_s = i;
  const std::string chart = Dashboard::strip_chart(flat, 10);
  EXPECT_NE(chart.find("min=7"), std::string::npos);
  EXPECT_EQ(Dashboard::strip_chart({}, 10), "(empty)");
}

TEST(Dashboard, MeanBetween) {
  const auto series = ramp_series();
  EXPECT_DOUBLE_EQ(Dashboard::mean_between(series, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(Dashboard::mean_between(series, 4.0, 6.0), 10.0);
  EXPECT_DOUBLE_EQ(Dashboard::mean_between(series, 100.0, 200.0), 0.0);
}

TEST(Dashboard, LinkOccupationSkipsIdleLinks) {
  hp::netsim::Simulator sim(hp::netsim::make_global_p4_lab());
  const Dashboard dashboard(sim);
  // Nothing flowing: the report has a header and no bars.
  const std::string idle = dashboard.link_occupation_report();
  EXPECT_NE(idle.find("link occupation"), std::string::npos);
  EXPECT_EQ(idle.find('#'), std::string::npos);

  const auto path = sim.topology().path_through(
      {"host1", "MIA", "CHI", "AMS", "host2"});
  sim.add_flow(0.0, hp::netsim::FlowSpec{
                        "f", path, std::numeric_limits<double>::infinity(),
                        0});
  sim.run_until(1.0);
  const std::string busy = dashboard.link_occupation_report();
  EXPECT_NE(busy.find("MIA"), std::string::npos);
  EXPECT_NE(busy.find("CHI"), std::string::npos);
  // The saturated MIA->CHI bar is full.
  EXPECT_NE(busy.find("##########"), std::string::npos);
  // SAO never appears: no traffic crosses it.
  EXPECT_EQ(busy.find("SAO"), std::string::npos);
}

}  // namespace
}  // namespace hp::core
