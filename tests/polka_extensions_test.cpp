// Tests for the PolKA extensions: M-PolKA multipath routeIDs and the
// PoT-PolKA proof-of-transit scheme.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "gf2/irreducible.hpp"
#include "polka/multipath.hpp"
#include "polka/pot.hpp"

namespace hp::polka {
namespace {

using gf2::Poly;

NodeId bitmap_node(const std::string& name, unsigned ports,
                   NodeIdAllocator& alloc) {
  // Bitmap forwarding needs deg(nodeID) >= port count (one bit per
  // port), not just log2(ports).
  return alloc.allocate(name, ports, min_degree_for_port_bitmap(ports) + 1);
}

TEST(PortSetPolynomial, RoundTrip) {
  const std::vector<unsigned> ports{0, 2, 5};
  const Poly bitmap = port_set_polynomial(ports);
  EXPECT_EQ(bitmap, Poly(0b100101));
  EXPECT_EQ(polynomial_port_set(bitmap), ports);
  EXPECT_TRUE(polynomial_port_set(Poly{}).empty());
}

TEST(Multipath, SingleNodeReplication) {
  NodeIdAllocator alloc;
  const NodeId node = bitmap_node("branch", 4, alloc);
  const RouteId route =
      compute_multipath_route_id({MultiHop{node, {1, 3}}});
  EXPECT_EQ(output_port_set(route, node), (std::vector<unsigned>{1, 3}));
}

TEST(Multipath, TreeAcrossNodes) {
  NodeIdAllocator alloc;
  const NodeId root = bitmap_node("root", 4, alloc);
  const NodeId left = bitmap_node("left", 4, alloc);
  const NodeId right = bitmap_node("right", 4, alloc);
  // root replicates to ports 0 and 1; left exits on 2; right on 0 and 3.
  const RouteId route = compute_multipath_route_id({
      MultiHop{root, {0, 1}},
      MultiHop{left, {2}},
      MultiHop{right, {0, 3}},
  });
  EXPECT_EQ(output_port_set(route, root), (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(output_port_set(route, left), (std::vector<unsigned>{2}));
  EXPECT_EQ(output_port_set(route, right), (std::vector<unsigned>{0, 3}));
}

TEST(Multipath, UnipathIsSpecialCase) {
  // A multipath routeID with singleton port sets reproduces classic
  // PolKA behaviour.
  NodeIdAllocator alloc;
  const NodeId a = bitmap_node("a", 4, alloc);
  const NodeId b = bitmap_node("b", 4, alloc);
  const RouteId multi =
      compute_multipath_route_id({MultiHop{a, {2}}, MultiHop{b, {1}}});
  EXPECT_EQ(output_port_set(multi, a), (std::vector<unsigned>{2}));
  EXPECT_EQ(output_port_set(multi, b), (std::vector<unsigned>{1}));
}

TEST(Multipath, Validation) {
  NodeIdAllocator alloc;
  const NodeId small = alloc.allocate("small", 4, 2);  // degree 2
  EXPECT_THROW((void)compute_multipath_route_id({MultiHop{small, {0, 1, 2}}}),
               std::domain_error);  // bitmap needs degree > 2
  EXPECT_THROW((void)compute_multipath_route_id({}), std::invalid_argument);
  const NodeId ok = bitmap_node("ok", 4, alloc);
  EXPECT_THROW((void)compute_multipath_route_id({MultiHop{ok, {}}}),
               std::invalid_argument);
}

// Property: random trees over random nodes always recover every port
// set exactly.
class MultipathProperty : public ::testing::TestWithParam<int> {};

TEST_P(MultipathProperty, PortSetsRecovered) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  NodeIdAllocator alloc;
  std::vector<MultiHop> tree;
  const std::size_t n_nodes = 2 + rng() % 6;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const unsigned ports = 3 + static_cast<unsigned>(rng() % 6);
    MultiHop hop{bitmap_node("n" + std::to_string(i), ports, alloc), {}};
    std::set<unsigned> chosen;
    const std::size_t k = 1 + rng() % ports;
    while (chosen.size() < k) {
      chosen.insert(static_cast<unsigned>(rng() % ports));
    }
    hop.ports.assign(chosen.begin(), chosen.end());
    tree.push_back(std::move(hop));
  }
  const RouteId route = compute_multipath_route_id(tree);
  for (const MultiHop& hop : tree) {
    EXPECT_EQ(output_port_set(route, hop.node), hop.ports) << hop.node.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultipathProperty, ::testing::Range(0, 20));

// --- proof of transit ---------------------------------------------------

std::vector<NodeId> pot_nodes() {
  NodeIdAllocator alloc;
  std::vector<NodeId> nodes;
  for (const char* name : {"MIA", "SAO", "CHI", "AMS"}) {
    nodes.push_back(alloc.allocate(name, 8, 4));
  }
  return nodes;
}

TEST(ProofOfTransit, HonestPathVerifies) {
  const auto nodes = pot_nodes();
  const PotVerifier verifier(nodes);
  const Poly nonce(0xABCDEF);
  TransitProof proof;
  for (const char* hop : {"MIA", "SAO", "AMS"}) {
    proof.absorb(verifier.secret(hop), nonce);
  }
  EXPECT_TRUE(verifier.verify(proof, {"MIA", "SAO", "AMS"}, nonce));
}

TEST(ProofOfTransit, SkippedNodeDetected) {
  const auto nodes = pot_nodes();
  const PotVerifier verifier(nodes);
  const Poly nonce(0x1234);
  TransitProof proof;
  proof.absorb(verifier.secret("MIA"), nonce);
  proof.absorb(verifier.secret("AMS"), nonce);  // SAO skipped
  EXPECT_FALSE(verifier.verify(proof, {"MIA", "SAO", "AMS"}, nonce));
}

TEST(ProofOfTransit, WrongPathDetected) {
  const auto nodes = pot_nodes();
  const PotVerifier verifier(nodes);
  const Poly nonce(0x77);
  TransitProof proof;
  for (const char* hop : {"MIA", "CHI", "AMS"}) {  // took the CHI path
    proof.absorb(verifier.secret(hop), nonce);
  }
  EXPECT_FALSE(verifier.verify(proof, {"MIA", "SAO", "AMS"}, nonce));
  EXPECT_TRUE(verifier.verify(proof, {"MIA", "CHI", "AMS"}, nonce));
}

TEST(ProofOfTransit, NonceBindsProof) {
  const auto nodes = pot_nodes();
  const PotVerifier verifier(nodes);
  TransitProof proof;
  for (const char* hop : {"MIA", "SAO", "AMS"}) {
    proof.absorb(verifier.secret(hop), Poly(0xAA));
  }
  // Replaying the accumulator under a different nonce fails.
  EXPECT_FALSE(verifier.verify(proof, {"MIA", "SAO", "AMS"}, Poly(0xBB)));
}

TEST(ProofOfTransit, UnknownNodeThrows) {
  const PotVerifier verifier(pot_nodes());
  EXPECT_THROW((void)verifier.secret("LON"), std::out_of_range);
  EXPECT_THROW((void)verifier.expected({"MIA", "LON"}, Poly(1)),
               std::out_of_range);
}

TEST(ProofOfTransit, KeysAreNodeSpecificAndSeeded) {
  const auto nodes = pot_nodes();
  const PotVerifier a(nodes, 1);
  const PotVerifier b(nodes, 1);
  const PotVerifier c(nodes, 2);
  EXPECT_EQ(a.secret("MIA").key, b.secret("MIA").key);  // deterministic
  EXPECT_NE(a.secret("MIA").key, a.secret("SAO").key);  // per-node
  EXPECT_NE(a.secret("MIA").key, c.secret("MIA").key);  // seed-dependent
}

}  // namespace
}  // namespace hp::polka
