// Tests for the Section III objective functions.

#include "core/objective.hpp"

#include <gtest/gtest.h>

namespace hp::core {
namespace {

TEST(Objectives, Feasibility) {
  EXPECT_TRUE(is_feasible({8.0, 6.0, 6.0, 1.0, 1.0}));
  EXPECT_FALSE(is_feasible({13.0, 6.0, 6.0, 1.0, 1.0}));
  EXPECT_FALSE(is_feasible({-1.0, 6.0, 6.0, 1.0, 1.0}));
}

TEST(LinearCost, FillsCheaperPathFirst) {
  const DemandSplit s = solve_linear_cost({8.0, 6.0, 6.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.x1, 6.0);
  EXPECT_DOUBLE_EQ(s.x2, 2.0);
  EXPECT_DOUBLE_EQ(s.objective, 10.0);
  // Costs swapped: path 2 fills first.
  const DemandSplit t = solve_linear_cost({8.0, 6.0, 6.0, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(t.x2, 6.0);
  EXPECT_DOUBLE_EQ(t.x1, 2.0);
}

TEST(LinearCost, InfeasibleThrows) {
  EXPECT_THROW((void)solve_linear_cost({20.0, 6.0, 6.0, 1.0, 1.0}),
               std::domain_error);
}

TEST(LinearCost, MatchesLpSolver) {
  const TwoPathProblem p{7.0, 5.0, 4.0, 2.0, 3.0};
  const DemandSplit corner = solve_linear_cost(p);
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {1, 0}, {0, 1}};
  lp.b = {p.demand, p.capacity1, p.capacity2};
  lp.senses = {Sense::kEqual, Sense::kLessEqual, Sense::kLessEqual};
  lp.c = {p.cost1, p.cost2};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, corner.objective, 1e-9);
}

TEST(MinMaxUtilization, EqualizesUtilization) {
  const DemandSplit s = solve_min_max_utilization({9.0, 6.0, 3.0, 1.0, 1.0});
  EXPECT_NEAR(s.x1 / 6.0, s.x2 / 3.0, 1e-12);
  EXPECT_NEAR(s.x1 + s.x2, 9.0, 1e-12);
  EXPECT_NEAR(s.objective, 1.0, 1e-12);  // h == total capacity here
  const DemandSplit half = solve_min_max_utilization({4.5, 6.0, 3.0, 1, 1});
  EXPECT_NEAR(half.objective, 0.5, 1e-12);
}

TEST(MinMaxUtilization, BeatsAnyOtherSplit) {
  const TwoPathProblem p{5.0, 8.0, 4.0, 1.0, 1.0};
  const DemandSplit best = solve_min_max_utilization(p);
  for (double x1 = 1.0; x1 <= 5.0; x1 += 0.5) {
    const double x2 = p.demand - x1;
    if (x2 < 0.0 || x2 > p.capacity2 || x1 > p.capacity1) continue;
    const double other = std::max(x1 / p.capacity1, x2 / p.capacity2);
    EXPECT_GE(other + 1e-9, best.objective);
  }
}

TEST(DelayObjective, MatchesBruteForce) {
  const TwoPathProblem p{6.0, 8.0, 8.0, 1.0, 1.0};
  const DemandSplit s = solve_delay_objective(p);
  double best = 1e100;
  for (double x1 = 0.0; x1 <= 6.0; x1 += 0.001) {
    best = std::min(best, delay_objective_value(p, x1));
  }
  EXPECT_NEAR(s.objective, best, 1e-4);
  EXPECT_NEAR(s.x1 + s.x2, p.demand, 1e-9);
}

TEST(DelayObjective, DoublePenaltyShiftsTowardDirectPath) {
  // The via path is counted twice (two hops), so the optimum puts more
  // traffic on the direct path than the symmetric 50/50 split.
  const DemandSplit s = solve_delay_objective({6.0, 8.0, 8.0, 1.0, 1.0});
  EXPECT_GT(s.x1, s.x2);
}

TEST(DelayObjective, SaturationRejected) {
  EXPECT_THROW((void)solve_delay_objective({16.0, 8.0, 8.0, 1.0, 1.0}),
               std::domain_error);
}

TEST(DelayObjective, ZeroDemandZeroCost) {
  const DemandSplit s = solve_delay_objective({0.0, 8.0, 8.0, 1.0, 1.0});
  EXPECT_NEAR(s.x1, 0.0, 1e-9);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);
}

TEST(KPathMinMax, MatchesTwoPathClosedForm) {
  const auto x = solve_k_path_min_max(9.0, {6.0, 3.0});
  const DemandSplit s = solve_min_max_utilization({9.0, 6.0, 3.0, 1, 1});
  EXPECT_NEAR(x[0], s.x1, 1e-6);
  EXPECT_NEAR(x[1], s.x2, 1e-6);
}

TEST(KPathMinMax, ThreePathsExperimentCapacities) {
  // The Fig 12 tunnels: 20, 10 and 5 Mbps.  A 28 Mbps aggregate demand
  // splits proportionally (utilization 0.8 on every path).
  const auto x = solve_k_path_min_max(28.0, {20.0, 10.0, 5.0});
  EXPECT_NEAR(x[0] / 20.0, 0.8, 1e-6);
  EXPECT_NEAR(x[1] / 10.0, 0.8, 1e-6);
  EXPECT_NEAR(x[2] / 5.0, 0.8, 1e-6);
}

TEST(KPathMinMax, InfeasibleThrows) {
  EXPECT_THROW((void)solve_k_path_min_max(100.0, {20.0, 10.0, 5.0}),
               std::domain_error);
  EXPECT_THROW((void)solve_k_path_min_max(1.0, {}), std::domain_error);
}

}  // namespace
}  // namespace hp::core
