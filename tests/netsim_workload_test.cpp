// Tests for sized flows / flow-completion times and the workload
// generator.

#include <gtest/gtest.h>

#include <cmath>

#include "netsim/workload.hpp"

namespace hp::netsim {
namespace {

Topology single_link() {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_duplex_link(0, 1, 8.0, 1.0);  // 8 Mbps = 1 MB/s
  return topo;
}

TEST(SizedFlow, CompletesExactlyWhenSizeTransferred) {
  Simulator sim(single_link());
  FlowSpec spec{"f", {0}, 1e18, 0, 5.0};  // 5 MB over 1 MB/s
  const FlowId f = sim.add_flow(0.0, std::move(spec));
  sim.run_until(100.0);
  ASSERT_TRUE(sim.completion_time(f).has_value());
  EXPECT_NEAR(*sim.completion_time(f), 5.0, 1e-6);
  EXPECT_NEAR(*sim.fct_s(f), 5.0, 1e-6);
  EXPECT_FALSE(sim.is_active(f));
  EXPECT_NEAR(sim.transferred_mb(f), 5.0, 1e-9);
}

TEST(SizedFlow, CompletionReactsToSharingChanges) {
  Simulator sim(single_link());
  // Two 4 MB flows share 1 MB/s: both run at 0.5 MB/s until the first
  // completes at t=8, then... they complete together at t=8.
  const FlowId f1 = sim.add_flow(0.0, FlowSpec{"f1", {0}, 1e18, 0, 4.0});
  // Second flow arrives at t=2: f1 has 2 MB done.  From t=2 both get
  // 0.5 MB/s.  f1 finishes its remaining 2 MB at t=6; f2 then speeds
  // up to 1 MB/s with 2 MB done and 2 MB left: done at t=8.
  const FlowId f2 = sim.add_flow(2.0, FlowSpec{"f2", {0}, 1e18, 0, 4.0});
  sim.run_until(50.0);
  EXPECT_NEAR(*sim.completion_time(f1), 6.0, 1e-6);
  EXPECT_NEAR(*sim.completion_time(f2), 8.0, 1e-6);
  EXPECT_NEAR(*sim.fct_s(f2), 6.0, 1e-6);
}

TEST(SizedFlow, UnfinishedHasNoFct) {
  Simulator sim(single_link());
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0}, 1e18, 0, 1000.0});
  sim.run_until(5.0);
  EXPECT_FALSE(sim.fct_s(f).has_value());
  EXPECT_TRUE(sim.is_active(f));
}

TEST(SizedFlow, StarvedFlowCompletesAfterRestore) {
  Topology topo = single_link();
  Simulator sim(std::move(topo));
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0}, 1e18, 0, 2.0});
  sim.fail_link(1.0, 0);
  sim.restore_link(10.0, 0);
  sim.run_until(30.0);
  ASSERT_TRUE(sim.completion_time(f).has_value());
  // 1 MB done before the cut; 1 MB after the restore: completes at 11 s.
  EXPECT_NEAR(*sim.completion_time(f), 11.0, 1e-3);
}

TEST(SizedFlow, DemandCapStillApplies) {
  Simulator sim(single_link());
  // 4 Mbps cap = 0.5 MB/s, 3 MB -> 6 s.
  const FlowId f = sim.add_flow(0.0, FlowSpec{"f", {0}, 4.0, 0, 3.0});
  sim.run_until(20.0);
  EXPECT_NEAR(*sim.completion_time(f), 6.0, 1e-6);
}

TEST(Workload, GeneratesMiceAndElephants) {
  Topology topo = make_global_p4_lab();
  const std::vector<Path> paths{
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"})};
  WorkloadParams params;
  params.duration_s = 600.0;
  params.arrival_rate_per_s = 1.0;
  const auto flows = generate_workload(paths, params);
  ASSERT_GT(flows.size(), 400U);
  std::size_t elephants = 0;
  for (const auto& flow : flows) {
    EXPECT_LT(flow.at_s, params.duration_s);
    EXPECT_GT(flow.spec.size_mb, 0.0);
    if (flow.spec.tos == 2) {
      ++elephants;
      EXPECT_GE(flow.spec.size_mb, params.elephant_min_mb);
      EXPECT_LE(flow.spec.size_mb, params.elephant_max_mb);
    }
  }
  // ~10% elephants.
  EXPECT_GT(elephants, flows.size() / 20);
  EXPECT_LT(elephants, flows.size() / 4);
  // Arrival times sorted.
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].at_s, flows[i - 1].at_s);
  }
}

TEST(Workload, DeterministicPerSeed) {
  Topology topo = make_global_p4_lab();
  const std::vector<Path> paths{
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"})};
  const auto a = generate_workload(paths);
  const auto b = generate_workload(paths);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at_s, b[i].at_s);
    EXPECT_DOUBLE_EQ(a[i].spec.size_mb, b[i].spec.size_mb);
  }
}

TEST(Workload, Validation) {
  EXPECT_THROW((void)generate_workload({}), std::invalid_argument);
  Topology topo = make_global_p4_lab();
  const std::vector<Path> paths{
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"})};
  WorkloadParams params;
  params.duration_s = 0.0;
  EXPECT_THROW((void)generate_workload(paths, params),
               std::invalid_argument);
}

TEST(Workload, P95IsNearestRankNotMax) {
  // 20 flows run back to back (never overlapping) on a 1 MB/s link, so
  // flow i's FCT is exactly its size: 1 s, 2 s, ..., 20 s.  Nearest-rank
  // p95 of 20 samples is the ceil(0.95 * 20) = 19th order statistic --
  // 19 s, not the 20 s maximum the old floor indexing returned.
  Simulator sim(single_link());
  std::vector<FlowId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(sim.add_flow(30.0 * i, FlowSpec{"f" + std::to_string(i),
                                                  {0},
                                                  1e18,
                                                  0,
                                                  static_cast<double>(i + 1)}));
  }
  sim.run_until(30.0 * 20 + 30.0);
  const FctStats stats = collect_fct(sim, ids);
  ASSERT_EQ(stats.completed, 20u);
  EXPECT_NEAR(stats.p95_fct_s, 19.0, 1e-6);
  EXPECT_NEAR(stats.max_fct_s, 20.0, 1e-6);
  EXPECT_GT(stats.max_fct_s, stats.p95_fct_s);
}

TEST(Workload, FctStatsEndToEnd) {
  Topology topo = make_global_p4_lab();
  const std::vector<Path> paths{
      topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"}),
      topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"})};
  WorkloadParams params;
  params.duration_s = 120.0;
  params.arrival_rate_per_s = 0.3;
  params.elephant_fraction = 0.0;  // mice only: everything finishes
  const auto workload = generate_workload(paths, params);
  Simulator sim(std::move(topo));
  std::vector<FlowId> ids;
  for (const auto& flow : workload) {
    ids.push_back(sim.add_flow(flow.at_s, flow.spec));
  }
  sim.run_until(600.0);
  const FctStats stats = collect_fct(sim, ids);
  EXPECT_EQ(stats.unfinished, 0U);
  EXPECT_EQ(stats.completed, ids.size());
  EXPECT_GT(stats.mean_fct_s, 0.0);
  EXPECT_GE(stats.p95_fct_s, stats.mean_fct_s);
  EXPECT_GE(stats.max_fct_s, stats.p95_fct_s);
}

}  // namespace
}  // namespace hp::netsim
