// Tests for max-min fair allocation, including the fairness invariants.

#include "netsim/fairshare.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace hp::netsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Topology line_topology(std::vector<double> capacities) {
  Topology topo;
  topo.add_node("n0");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    topo.add_node("n" + std::to_string(i + 1));
    topo.add_duplex_link(i, i + 1, capacities[i], 1.0);
  }
  return topo;
}

TEST(FairShare, SingleGreedyFlowTakesBottleneck) {
  const Topology topo = line_topology({10.0, 4.0, 8.0});
  // Forward links are indices 0, 2, 4.
  const std::vector<FairShareFlow> flows{{{0, 2, 4}, kInf}};
  const auto rates = max_min_fair_rates(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
}

TEST(FairShare, TwoGreedyFlowsSplitEqually) {
  const Topology topo = line_topology({10.0});
  const std::vector<FairShareFlow> flows{{{0}, kInf}, {{0}, kInf}};
  const auto rates = max_min_fair_rates(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(FairShare, DemandLimitedFlowReleasesShare) {
  const Topology topo = line_topology({10.0});
  const std::vector<FairShareFlow> flows{{{0}, 2.0}, {{0}, kInf}};
  const auto rates = max_min_fair_rates(topo, flows);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);  // picks up the slack
}

TEST(FairShare, ClassicTriangleExample) {
  // Two links A-B (10) and B-C (5); flow1 spans both, flow2 on A-B,
  // flow3 on B-C.  Max-min: flow1 = 2.5 (bottleneck B-C with flow3),
  // flow3 = 2.5, flow2 = 7.5.
  const Topology topo = line_topology({10.0, 5.0});
  const std::vector<FairShareFlow> flows{
      {{0, 2}, kInf}, {{0}, kInf}, {{2}, kInf}};
  const auto rates = max_min_fair_rates(topo, flows);
  EXPECT_NEAR(rates[0], 2.5, 1e-9);
  EXPECT_NEAR(rates[1], 7.5, 1e-9);
  EXPECT_NEAR(rates[2], 2.5, 1e-9);
}

TEST(FairShare, EmptyPathGetsDemand) {
  const Topology topo = line_topology({1.0});
  const std::vector<FairShareFlow> flows{{{}, 42.0}};
  EXPECT_DOUBLE_EQ(max_min_fair_rates(topo, flows)[0], 42.0);
}

TEST(FairShare, Validation) {
  const Topology topo = line_topology({1.0});
  EXPECT_THROW(
      (void)max_min_fair_rates(topo, {{std::vector<LinkIndex>{9}, kInf}}),
      std::out_of_range);
  EXPECT_THROW(
      (void)max_min_fair_rates(topo, {{std::vector<LinkIndex>{0}, -1.0}}),
      std::invalid_argument);
}

TEST(FairShare, ExperimentTwoScenario) {
  // The paper's Fig 12 state before optimization: three flows pinned to
  // tunnel 1 (MIA-SAO-AMS, 20 Mbps) share ~20 Mbps total; after moving
  // one flow to tunnel 2 (10) and one to tunnel 3 (5), the total rises
  // to ~20+10+5 = 35 in the ideal fluid model (the paper measured ~30
  // with real TCP).
  Topology topo = make_global_p4_lab();
  const Path t1 = topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  const Path t2 = topo.path_through({"host1", "MIA", "CHI", "AMS", "host2"});
  const Path t3 =
      topo.path_through({"host1", "MIA", "CAL", "CHI", "AMS", "host2"});

  const auto before =
      max_min_fair_rates(topo, {{t1, kInf}, {t1, kInf}, {t1, kInf}});
  const double total_before = before[0] + before[1] + before[2];
  EXPECT_NEAR(total_before, 20.0, 1e-6);

  const auto after =
      max_min_fair_rates(topo, {{t1, kInf}, {t2, kInf}, {t3, kInf}});
  const double total_after = after[0] + after[1] + after[2];
  EXPECT_NEAR(after[0], 20.0, 1e-6);
  EXPECT_NEAR(after[1], 10.0, 1e-6);
  EXPECT_NEAR(after[2], 5.0, 1e-6);
  EXPECT_GT(total_after, total_before + 10.0);
}

// Property suite: the three max-min invariants on random instances.
class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, Invariants) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> cap(1.0, 50.0);
  std::uniform_int_distribution<int> coin(0, 1);

  // Random line network, random subpath flows.
  const std::size_t n_links = 3 + rng() % 5;
  std::vector<double> capacities(n_links);
  for (double& c : capacities) c = cap(rng);
  const Topology topo = line_topology(capacities);

  std::vector<FairShareFlow> flows;
  const std::size_t n_flows = 2 + rng() % 6;
  for (std::size_t f = 0; f < n_flows; ++f) {
    const std::size_t a = rng() % n_links;
    const std::size_t b = a + 1 + rng() % (n_links - a);
    Path path;
    for (std::size_t l = a; l < b; ++l) path.push_back(2 * l);  // fwd links
    const double demand = coin(rng) ? kInf : cap(rng);
    flows.push_back(FairShareFlow{std::move(path), demand});
  }
  const auto rates = max_min_fair_rates(topo, flows);

  // 1. Capacity: no link over its capacity.
  std::vector<double> load(topo.link_count(), 0.0);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_GE(rates[f], -1e-9);
    EXPECT_LE(rates[f], flows[f].demand_mbps + 1e-6);
    for (const LinkIndex l : flows[f].path) load[l] += rates[f];
  }
  for (LinkIndex l = 0; l < topo.link_count(); ++l) {
    EXPECT_LE(load[l], topo.link(l).capacity_mbps + 1e-6);
  }

  // 2. Bottleneck property: every flow meets its demand or crosses a
  // saturated link where it has a maximal rate.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (rates[f] >= flows[f].demand_mbps - 1e-6) continue;
    bool bottlenecked = false;
    for (const LinkIndex l : flows[f].path) {
      const bool saturated =
          load[l] >= topo.link(l).capacity_mbps - 1e-6;
      if (!saturated) continue;
      bool is_max = true;
      for (std::size_t g = 0; g < flows.size(); ++g) {
        if (g == f) continue;
        for (const LinkIndex gl : flows[g].path) {
          if (gl == l && rates[g] > rates[f] + 1e-6) is_max = false;
        }
      }
      if (is_max) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " is not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace hp::netsim
