// Failure injection and recovery (paper Section VII future work;
// "robust failure recovery" is an advertised PolKA capability).
// Covers the simulator's link up/down machinery and the Controller's
// recover_from_failures path.

#include <gtest/gtest.h>

#include <limits>

#include "core/runtime.hpp"

namespace hp::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
using hp::freertr::parse_ipv4;
using hp::netsim::FlowSpec;
using hp::netsim::LinkIndex;

FlowRequest make_request(const std::string& name, unsigned tos) {
  FlowRequest request;
  request.name = name;
  request.acl_name = name;
  request.src_ip = parse_ipv4("40.40.1.2");
  request.dst_ip = parse_ipv4("40.40.2.2");
  request.tos = tos;
  return request;
}

TEST(LinkFailure, DropsFlowRateToZero) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const auto path = topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  const LinkIndex mia_sao =
      *topo.link_between(topo.index_of("MIA"), topo.index_of("SAO"));
  hp::netsim::Simulator sim(std::move(topo));
  const auto flow = sim.add_flow(0.0, FlowSpec{"f", path, kInf, 0});
  sim.fail_link(10.0, mia_sao);
  sim.run_until(20.0);
  EXPECT_LT(sim.current_rate(flow), 0.01);
  EXPECT_FALSE(sim.is_link_up(mia_sao));
  // Duplex partner is down too.
  EXPECT_FALSE(sim.is_link_up(mia_sao + 1));
}

TEST(LinkFailure, RestoreRecoversCapacity) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const auto path = topo.path_through({"host1", "MIA", "SAO", "AMS", "host2"});
  const LinkIndex mia_sao =
      *topo.link_between(topo.index_of("MIA"), topo.index_of("SAO"));
  hp::netsim::Simulator sim(std::move(topo));
  const auto flow = sim.add_flow(0.0, FlowSpec{"f", path, kInf, 0});
  sim.fail_link(10.0, mia_sao);
  sim.restore_link(20.0, mia_sao);
  sim.run_until(30.0);
  EXPECT_TRUE(sim.is_link_up(mia_sao));
  EXPECT_NEAR(sim.current_rate(flow), 20.0, 1e-6);
  // Transfer accounting: ~10 s at 20 Mbps before + ~10 s after = 50 MB.
  EXPECT_NEAR(sim.transferred_mb(flow), 50.0, 0.1);
}

TEST(LinkFailure, IdempotentFailAndRestore) {
  hp::netsim::Topology topo = hp::netsim::make_global_p4_lab();
  const LinkIndex mia_sao =
      *topo.link_between(topo.index_of("MIA"), topo.index_of("SAO"));
  const double original = topo.link(mia_sao).capacity_mbps;
  hp::netsim::Simulator sim(std::move(topo));
  sim.fail_link(1.0, mia_sao);
  sim.fail_link(2.0, mia_sao);  // double-fail must not clobber the save
  sim.restore_link(3.0, mia_sao);
  sim.restore_link(4.0, mia_sao);
  sim.run_until(5.0);
  EXPECT_TRUE(sim.is_link_up(mia_sao));
  EXPECT_DOUBLE_EQ(sim.topology().link(mia_sao).capacity_mbps, original);
}

TEST(LinkFailure, BadIndexThrows) {
  hp::netsim::Simulator sim(hp::netsim::make_global_p4_lab());
  EXPECT_THROW(sim.fail_link(0.0, 999), std::out_of_range);
  EXPECT_THROW(sim.restore_link(0.0, 999), std::out_of_range);
}

TEST(FailureRecovery, ControllerMigratesAffectedFlows) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();
  const auto f1 = controller.handle_new_flow(make_request("f1", 1), 0.0,
                                             Objective::kFirstConfigured);
  sim.run_until(30.0);
  EXPECT_EQ(controller.managed(f1).tunnel_id, 1U);

  // Cut MIA-SAO: tunnel 1 dies.
  const auto& topo = sim.topology();
  const LinkIndex mia_sao =
      *topo.link_between(topo.index_of("MIA"), topo.index_of("SAO"));
  sim.fail_link(30.0, mia_sao);
  sim.run_until(31.0);
  EXPECT_FALSE(controller.tunnel_healthy(1));
  EXPECT_TRUE(controller.tunnel_healthy(2));

  const std::size_t migrated =
      controller.recover_from_failures(31.0, Objective::kMinLatency);
  sim.run_until(60.0);
  EXPECT_EQ(migrated, 1U);
  EXPECT_EQ(controller.managed(f1).tunnel_id, 2U);
  EXPECT_NEAR(sim.current_rate(controller.managed(f1).sim_flow), 10.0, 1e-6);
  // Edge PBR followed (the one-rewrite recovery).
  EXPECT_EQ(runtime.edge().config().find_pbr("f1")->tunnel_id, 2U);
}

TEST(FailureRecovery, HealthyFlowsUntouched) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();
  const auto f1 = controller.handle_new_flow(make_request("f1", 1), 0.0,
                                             Objective::kFirstConfigured);
  sim.run_until(10.0);
  // Cut MIA-CAL (tunnel 3 only); the tunnel-1 flow must not move.
  const auto& topo = sim.topology();
  sim.fail_link(10.0, *topo.link_between(topo.index_of("MIA"),
                                         topo.index_of("CAL")));
  sim.run_until(11.0);
  EXPECT_EQ(controller.recover_from_failures(11.0, Objective::kMinLatency),
            0U);
  EXPECT_EQ(controller.managed(f1).tunnel_id, 1U);
}

TEST(FailureRecovery, ChoiceAvoidsDownTunnels) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  // Tunnel 2 is the latency winner; cut MIA-CHI and the choice must
  // shift to a healthy tunnel.
  const auto& topo = sim.topology();
  sim.fail_link(0.0, *topo.link_between(topo.index_of("MIA"),
                                        topo.index_of("CHI")));
  sim.run_until(1.0);
  const unsigned chosen =
      runtime.controller().choose_tunnel(Objective::kMinLatency);
  EXPECT_NE(chosen, 2U);
  EXPECT_TRUE(runtime.controller().tunnel_healthy(chosen));
}

TEST(FailureRecovery, ThrowsWhenNothingHealthy) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  auto& controller = runtime.controller();
  controller.handle_new_flow(make_request("f1", 1), 0.0,
                             Objective::kFirstConfigured);
  sim.run_until(5.0);
  // Sever every way out of MIA.
  const auto& topo = sim.topology();
  for (const char* peer : {"SAO", "CHI", "CAL"}) {
    sim.fail_link(5.0, *topo.link_between(topo.index_of("MIA"),
                                          topo.index_of(peer)));
  }
  sim.run_until(6.0);
  EXPECT_THROW(controller.recover_from_failures(6.0, Objective::kMinLatency),
               std::runtime_error);
}

}  // namespace
}  // namespace hp::core
