// Tests for the Hecate ML pipeline and service.

#include "core/hecate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dataset/uq_wireless.hpp"
#include "ml/linear.hpp"

namespace hp::core {
namespace {

std::vector<double> sine_series(std::size_t n, double offset = 20.0,
                                double amplitude = 5.0) {
  std::vector<double> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = offset + amplitude * std::sin(static_cast<double>(i) * 0.2);
  }
  return s;
}

TEST(RunPipeline, LinearModelTracksSmoothSeries) {
  auto series = sine_series(400);
  hp::ml::LinearRegression model;
  const PredictionTrace trace = run_pipeline(model, series);
  EXPECT_EQ(trace.observed.size(), trace.predicted.size());
  // A smooth sine from a 10-step window is near-perfectly predictable.
  EXPECT_LT(trace.rmse, 0.5);
}

TEST(RunPipeline, OutputsAreInOriginalScale) {
  auto series = sine_series(300, 100.0, 2.0);  // mean 100
  hp::ml::LinearRegression model;
  const PredictionTrace trace = run_pipeline(model, series);
  const double mean_pred =
      hp::ml::mean(trace.predicted);
  EXPECT_NEAR(mean_pred, 100.0, 3.0);  // not in z-score space
}

TEST(EvaluateCatalog, ScoresAllEighteen) {
  // Short series keeps this fast; the full-length run is the bench.
  hp::dataset::UqTraceParams params;
  params.duration_s = 120;
  const auto trace = hp::dataset::generate_uq_trace(params);
  const auto scores = evaluate_catalog(trace.lte, 10, 0.75);
  ASSERT_EQ(scores.size(), 18U);
  for (const auto& score : scores) {
    EXPECT_GT(score.rmse, 0.0) << score.label;
    EXPECT_TRUE(std::isfinite(score.rmse)) << score.label;
  }
}

TEST(EvaluateCatalog, GprIsAmongTheWorst) {
  // The paper's headline qualitative result (Figs 6 and 8): GPR with
  // default kernel collapses to the prior and lands at the bottom.
  // Uses the full 500 s trace -- on short indoor-only prefixes GPR's
  // interpolation is actually competitive and the effect disappears.
  const auto trace = hp::dataset::generate_uq_trace();
  const auto scores = evaluate_catalog(trace.wifi, 10, 0.75);
  double gpr_rmse = 0.0;
  std::vector<double> all;
  for (const auto& score : scores) {
    if (score.short_name == "GPR") gpr_rmse = score.rmse;
    all.push_back(score.rmse);
  }
  std::sort(all.begin(), all.end());
  // GPR in the worst quartile.
  EXPECT_GE(gpr_rmse, all[all.size() * 3 / 4 - 1]);
}

TEST(HecateService, FitForecastRecommend) {
  HecateConfig config;
  config.model = "LR";  // fast and deterministic for tests
  config.history = 10;
  config.horizon = 5;
  HecateService hecate(config);
  // Path A is consistently better than path B.
  hecate.load_series("A", sine_series(120, 30.0, 1.0));
  hecate.load_series("B", sine_series(120, 10.0, 1.0));
  hecate.fit("A");
  hecate.fit("B");
  EXPECT_TRUE(hecate.is_trained("A"));
  const auto forecast = hecate.forecast("A", 5);
  ASSERT_EQ(forecast.size(), 5U);
  for (const double v : forecast) EXPECT_NEAR(v, 30.0, 3.0);
  const auto best = hecate.recommend({"A", "B"});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, "A");
}

TEST(HecateService, RecommendSkipsUntrainedPaths) {
  HecateService hecate({"LR", 10, 5, 0.75});
  hecate.load_series("A", sine_series(100, 5.0, 1.0));
  hecate.fit("A");
  hecate.load_series("B", sine_series(100, 50.0, 1.0));  // better but untrained
  const auto best = hecate.recommend({"A", "B"});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, "A");
  EXPECT_EQ(hecate.recommend({"C"}), std::nullopt);
}

TEST(HecateService, ObserveAccumulates) {
  HecateService hecate({"LR", 4, 2, 0.75});
  for (int i = 0; i < 30; ++i) {
    hecate.observe("p", static_cast<double>(i), 10.0 + i % 3);
  }
  EXPECT_EQ(hecate.series_length("p"), 30U);
  hecate.fit("p");
  EXPECT_TRUE(hecate.is_trained("p"));
}

TEST(HecateService, ErrorsOnThinData) {
  HecateService hecate;
  hecate.load_series("thin", {1.0, 2.0, 3.0});
  EXPECT_THROW(hecate.fit("thin"), std::runtime_error);
  EXPECT_THROW((void)hecate.forecast("thin", 3), std::runtime_error);
  EXPECT_THROW(hecate.fit("missing"), std::runtime_error);
}

TEST(HecateService, ConfigValidation) {
  HecateConfig config;
  config.history = 0;
  EXPECT_THROW(HecateService{config}, std::invalid_argument);
}

TEST(HecateService, MultiStepForecastFeedsBack) {
  // A linearly increasing series must produce an increasing forecast
  // when predictions are fed back recursively.
  HecateService hecate({"LR", 10, 10, 0.75});
  std::vector<double> ramp(100);
  for (std::size_t i = 0; i < 100; ++i) ramp[i] = static_cast<double>(i);
  hecate.load_series("ramp", ramp);
  hecate.fit("ramp");
  const auto forecast = hecate.forecast("ramp", 10);
  for (std::size_t i = 1; i < forecast.size(); ++i) {
    EXPECT_GT(forecast[i], forecast[i - 1] - 0.5);
  }
  EXPECT_NEAR(forecast[0], 100.0, 5.0);
}

}  // namespace
}  // namespace hp::core
