// Event-driven packet-level simulator tests: event-queue ordering,
// every registry scenario family producing congestion metrics through
// SimRunner, bit-identical determinism across runs and thread counts,
// waypoint parity on segmented routes, and the single-link saturation
// sanity check (offered load >> capacity => queue at cap, drops,
// utilization ~= 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/contracts.hpp"
#include "netsim/topology.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/registry.hpp"
#include "scenario/traffic.hpp"
#include "sim/event_queue.hpp"
#include "sim/runner.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;

namespace {

TEST(EventQueue, PopsInTimeOrderWithFifoTies) {
  sim::EventQueue q;
  q.push(30, 0, 0);
  q.push(10, 0, 1);
  q.push(20, 0, 2);
  q.push(10, 0, 3);  // same tick as seq-earlier arg=1: must pop after it
  q.push(10, 0, 4);

  std::vector<std::uint32_t> order;
  std::vector<sim::Tick> times;
  while (!q.empty()) {
    const sim::Event e = q.pop();
    order.push_back(e.arg);
    times.push_back(e.at);
  }
  EXPECT_EQ(times, (std::vector<sim::Tick>{10, 10, 10, 20, 30}));
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 4, 2, 0}));
}

/// A small per-family spec: the registry's topology at a stream size
/// that keeps the whole suite fast.
scenario::ScenarioSpec small_spec(const scenario::ScenarioSpec& base,
                                  scenario::TrafficPattern pattern) {
  scenario::ScenarioSpec spec = base;
  spec.traffic.pattern = pattern;
  spec.traffic.packets = 2048;
  spec.traffic.max_pairs = 64;
  spec.traffic.seed = 5;
  return spec;
}

TEST(SimRunner, EveryRegistryFamilyReportsCongestionMetrics) {
  // One spec per topology family (the registry crosses each family
  // with every pattern; family coverage is what matters here).
  std::vector<const scenario::ScenarioSpec*> families;
  std::vector<scenario::TopologyFamily> seen;
  for (const scenario::ScenarioSpec& spec : scenario::builtin_scenarios()) {
    if (std::find(seen.begin(), seen.end(), spec.family) == seen.end()) {
      seen.push_back(spec.family);
      families.push_back(&spec);
    }
  }
  ASSERT_EQ(families.size(), 5u);

  for (const scenario::ScenarioSpec* base : families) {
    for (const auto pattern : {scenario::TrafficPattern::kUniformRandom,
                               scenario::TrafficPattern::kHotspot}) {
      const scenario::ScenarioSpec spec = small_spec(*base, pattern);
      SCOPED_TRACE(std::string(scenario::to_string(spec.family)) + "/" +
                   scenario::to_string(pattern));
      const sim::SimReport report = sim::run_sim_scenario(spec);

      // Every injected packet is accounted for exactly once.
      EXPECT_EQ(report.forwarding.packets + report.forwarding.dropped_packets,
                spec.traffic.packets);
      // The sim walks the same compiled routes as replay: every
      // delivered packet must egress exactly where the pair expects.
      EXPECT_EQ(report.forwarding.wrong_egress, 0u);
      EXPECT_EQ(report.forwarding.ttl_expired, 0u);
      EXPECT_GT(report.flows, 0u);
      EXPECT_GT(report.completed_flows, 0u);
      EXPECT_GT(report.fct_p50_ns(), 0u);
      EXPECT_GE(report.fct_p95_ns(), report.fct_p50_ns());
      EXPECT_GE(report.drop_rate(), 0.0);
      EXPECT_LE(report.drop_rate(), 1.0);
      EXPECT_GE(report.max_queue_depth, 1u);
      EXPECT_GT(report.max_link_utilization, 0.0);
      EXPECT_LE(report.max_link_utilization, 1.0 + 1e-9);
      EXPECT_GT(report.duration_ns, 0u);
      EXPECT_GT(report.forwarding.mod_operations,
                report.forwarding.packets);  // multi-hop routes
    }
  }
}

TEST(SimRunner, FixedSeedIsBitIdenticalAcrossRunsAndThreadCounts) {
  const scenario::ScenarioSpec* base =
      scenario::find_scenario("torus4x4/hotspot");
  ASSERT_NE(base, nullptr);
  const scenario::ScenarioSpec spec =
      small_spec(*base, scenario::TrafficPattern::kHotspot);

  sim::SimOptions options;
  const sim::SimReport first = sim::run_sim_scenario(spec, options);
  const sim::SimReport again = sim::run_sim_scenario(spec, options);
  EXPECT_EQ(first, again) << "same seed, same options: report must be "
                             "bit-identical across runs";

  // Route compilation sharded across more threads must not change a
  // single simulated outcome (the sim itself is single-threaded).
  for (const unsigned threads : {2u, 4u}) {
    sim::SimOptions threaded = options;
    threaded.compile_threads = threads;
    const sim::SimReport report = sim::run_sim_scenario(spec, threaded);
    EXPECT_EQ(first, report)
        << "compile_threads=" << threads << " changed the simulated report";
  }
}

TEST(SimRunner, RejectsZeroQueueCapacity) {
  const scenario::ScenarioSpec* base =
      scenario::find_scenario("torus4x4/hotspot");
  ASSERT_NE(base, nullptr);
  const scenario::ScenarioSpec spec =
      small_spec(*base, scenario::TrafficPattern::kHotspot);
  sim::SimOptions options;
  options.queue_capacity = 0;
  options.ecn_threshold = 0;
  EXPECT_THROW((void)sim::run_sim_scenario(spec, options),
               hp::core::ContractViolation);
}

TEST(SimRunner, RejectsEcnThresholdBeyondQueueCapacity) {
  // A mark threshold the queue can never reach silently disables ECN;
  // better a loud contract violation than a knob that does nothing.
  const scenario::ScenarioSpec* base =
      scenario::find_scenario("torus4x4/hotspot");
  ASSERT_NE(base, nullptr);
  const scenario::ScenarioSpec spec =
      small_spec(*base, scenario::TrafficPattern::kHotspot);
  sim::SimOptions options;
  options.queue_capacity = 32;
  options.ecn_threshold = 33;
  EXPECT_THROW((void)sim::run_sim_scenario(spec, options),
               hp::core::ContractViolation);
}

TEST(SimRunner, SegmentedRoutesSimulateWithWaypointParity) {
  // Deep ring paths outgrow one 64-bit label, so their sim walk must
  // re-label at waypoints exactly like forward_segmented does.
  scenario::ScenarioSpec spec;
  spec.name = "ring48/uniform";
  spec.family = scenario::TopologyFamily::kRing;
  spec.a = 48;
  spec.traffic.pattern = scenario::TrafficPattern::kUniformRandom;
  spec.traffic.packets = 1024;
  spec.traffic.max_pairs = 96;
  spec.traffic.seed = 3;

  const sim::SimReport report = sim::run_sim_scenario(spec);
  EXPECT_GT(report.forwarding.segmented_packets, 0u)
      << "ring48 should need multi-segment routes";
  EXPECT_GT(report.forwarding.segment_swaps, 0u);
  EXPECT_EQ(report.forwarding.wrong_egress, 0u)
      << "waypoint re-labels diverged from the compiled expectation";
  EXPECT_EQ(report.forwarding.ttl_expired, 0u);
}

TEST(SimRunner, SingleLinkSaturationFillsQueueDropsAndSaturatesWire) {
  // Two routers, one 10 Mbps duplex link; sources inject at 1000 Mbps
  // => offered load is 100x capacity.  The egress queue must grow to
  // its cap, tail-drop the excess and keep the wire ~100% busy.
  hp::netsim::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  topo.add_duplex_link(a, b, /*capacity_mbps=*/10.0, /*delay_ms=*/0.1);
  scenario::BuiltFabric fabric(std::move(topo));

  scenario::TrafficParams traffic;
  traffic.pattern = scenario::TrafficPattern::kUniformRandom;
  traffic.packets = 512;
  traffic.max_pairs = 4;
  traffic.seed = 9;
  const scenario::PacketStream stream =
      scenario::generate_traffic(fabric, traffic);

  sim::SimOptions options;
  options.source_rate_mbps = 1000.0;
  options.queue_capacity = 16;
  options.ecn_threshold = 8;
  options.flow_packets = 256;
  const sim::SimReport report = sim::SimRunner(options).run(fabric, stream);

  EXPECT_EQ(report.max_queue_depth, options.queue_capacity)
      << "queue should grow exactly to its cap under sustained overload";
  EXPECT_GT(report.forwarding.dropped_packets, 0u);
  EXPECT_GT(report.drop_rate(), 0.5) << "100x overload must shed most load";
  EXPECT_GT(report.max_link_utilization, 0.9)
      << "the bottleneck wire should be busy almost the whole run";
  EXPECT_LE(report.max_link_utilization, 1.0 + 1e-9);
  EXPECT_GT(report.ecn_marked, 0u);
  EXPECT_EQ(report.forwarding.wrong_egress, 0u);
}

}  // namespace
