// Tests for the two-phase simplex solver.

#include "core/lp.hpp"

#include <gtest/gtest.h>

namespace hp::core {
namespace {

TEST(Simplex, BasicMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => min -3x - 2y.
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {1, 3}};
  lp.b = {4, 6};
  lp.senses = {Sense::kLessEqual, Sense::kLessEqual};
  lp.c = {-3, -2};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
  EXPECT_NEAR(sol.objective, -12.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y == 5, x <= 3.
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {1, 0}};
  lp.b = {5, 3};
  lp.senses = {Sense::kEqual, Sense::kLessEqual};
  lp.c = {1, 2};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, 7.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min 2x + y s.t. x + y >= 4, x <= 10, y <= 10.
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {1, 0}, {0, 1}};
  lp.b = {4, 10, 10};
  lp.senses = {Sense::kGreaterEqual, Sense::kLessEqual, Sense::kLessEqual};
  lp.c = {2, 1};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  // x <= 1 and x >= 3 cannot hold.
  LpProblem lp;
  lp.a = Matrix{{1}, {1}};
  lp.b = {1, 3};
  lp.senses = {Sense::kLessEqual, Sense::kGreaterEqual};
  lp.c = {1};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x with only x >= 0: unbounded below.
  LpProblem lp;
  lp.a = Matrix{{1}};
  lp.b = {0};
  lp.senses = {Sense::kGreaterEqual};
  lp.c = {-1};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x <= -2  (i.e. x >= 2); min x => x = 2.
  LpProblem lp;
  lp.a = Matrix{{-1}};
  lp.b = {-2};
  lp.senses = {Sense::kLessEqual};
  lp.c = {1};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex; Bland's
  // rule must avoid cycling.
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {2, 2}, {1, 0}, {0, 1}};
  lp.b = {2, 4, 2, 2};
  lp.senses = {Sense::kLessEqual, Sense::kLessEqual, Sense::kLessEqual,
               Sense::kLessEqual};
  lp.c = {-1, -1};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, DimensionValidation) {
  LpProblem lp;
  lp.a = Matrix{{1, 1}};
  lp.b = {1, 2};  // wrong length
  lp.senses = {Sense::kLessEqual};
  lp.c = {1, 1};
  EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, PaperEquationOneTwoLp) {
  // Eq 1-2 as an LP: min xi1*x1 + xi2*x2, x1 + x2 == h, x_i <= c.
  // With h=8, c=6 each, costs (1, 2): x1=6, x2=2.
  LpProblem lp;
  lp.a = Matrix{{1, 1}, {1, 0}, {0, 1}};
  lp.b = {8, 6, 6};
  lp.senses = {Sense::kEqual, Sense::kLessEqual, Sense::kLessEqual};
  lp.c = {1, 2};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 6.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
}

}  // namespace
}  // namespace hp::core
