// Tests for the topology model and the Fig 9 Global P4 Lab builder.

#include "netsim/topology.hpp"

#include <gtest/gtest.h>

namespace hp::netsim {
namespace {

TEST(Topology, NodesAndDuplexLinks) {
  Topology topo;
  const NodeIndex a = topo.add_node("A");
  const NodeIndex b = topo.add_node("B");
  const LinkIndex fwd = topo.add_duplex_link(a, b, 10.0, 5.0);
  EXPECT_EQ(topo.node_count(), 2U);
  EXPECT_EQ(topo.link_count(), 2U);
  EXPECT_EQ(topo.link(fwd).from, a);
  EXPECT_EQ(topo.link(fwd).to, b);
  EXPECT_EQ(topo.link(fwd + 1).from, b);
  EXPECT_EQ(topo.link(fwd + 1).to, a);
  EXPECT_DOUBLE_EQ(topo.link(fwd).capacity_mbps, 10.0);
}

TEST(Topology, Validation) {
  Topology topo;
  const NodeIndex a = topo.add_node("A");
  EXPECT_THROW(topo.add_node("A"), std::invalid_argument);
  EXPECT_THROW(topo.add_duplex_link(a, a, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(topo.add_duplex_link(a, 5, 1.0, 1.0), std::out_of_range);
  const NodeIndex b = topo.add_node("B");
  EXPECT_THROW(topo.add_duplex_link(a, b, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(topo.add_duplex_link(a, b, 1.0, 1.0, 1.0),
               std::invalid_argument);
}

TEST(Topology, LinkBetween) {
  Topology topo;
  const NodeIndex a = topo.add_node("A");
  const NodeIndex b = topo.add_node("B");
  const NodeIndex c = topo.add_node("C");
  topo.add_duplex_link(a, b, 1.0, 1.0);
  EXPECT_TRUE(topo.link_between(a, b).has_value());
  EXPECT_TRUE(topo.link_between(b, a).has_value());
  EXPECT_FALSE(topo.link_between(a, c).has_value());
}

TEST(Topology, PathThroughAndMetrics) {
  Topology topo;
  topo.add_node("A");
  topo.add_node("B");
  topo.add_node("C");
  topo.add_duplex_link(0, 1, 10.0, 5.0);
  topo.add_duplex_link(1, 2, 4.0, 7.0);
  const Path path = topo.path_through({"A", "B", "C"});
  ASSERT_EQ(path.size(), 2U);
  EXPECT_TRUE(topo.is_connected_path(path));
  EXPECT_DOUBLE_EQ(topo.path_delay_ms(path), 12.0);
  EXPECT_DOUBLE_EQ(topo.path_bottleneck_mbps(path), 4.0);
  EXPECT_THROW((void)topo.path_through({"A", "C"}), std::invalid_argument);
  EXPECT_THROW((void)topo.path_through({"A"}), std::invalid_argument);
}

TEST(Topology, DisconnectedPathDetected) {
  Topology topo;
  topo.add_node("A");
  topo.add_node("B");
  topo.add_node("C");
  topo.add_duplex_link(0, 1, 1.0, 1.0);  // links 0,1
  topo.add_duplex_link(1, 2, 1.0, 1.0);  // links 2,3
  EXPECT_TRUE(topo.is_connected_path({0, 2}));
  EXPECT_FALSE(topo.is_connected_path({0, 3}));
  EXPECT_FALSE(topo.is_connected_path({}));
}

TEST(GlobalP4Lab, MatchesFigNine) {
  const Topology topo = make_global_p4_lab();
  EXPECT_EQ(topo.node_count(), 7U);  // 5 routers + 2 hosts
  for (const char* name : {"MIA", "CHI", "CAL", "SAO", "AMS"}) {
    EXPECT_EQ(topo.node(topo.index_of(name)).kind, NodeKind::kRouter) << name;
  }
  EXPECT_EQ(topo.node(topo.index_of("host1")).kind, NodeKind::kHost);

  // The experiment-2 capacities.
  const auto cap = [&](const char* a, const char* b) {
    return topo.link(*topo.link_between(topo.index_of(a), topo.index_of(b)))
        .capacity_mbps;
  };
  EXPECT_DOUBLE_EQ(cap("MIA", "SAO"), 20.0);
  EXPECT_DOUBLE_EQ(cap("SAO", "AMS"), 20.0);
  EXPECT_DOUBLE_EQ(cap("CHI", "AMS"), 20.0);
  EXPECT_DOUBLE_EQ(cap("MIA", "CHI"), 10.0);
  EXPECT_DOUBLE_EQ(cap("MIA", "CAL"), 5.0);
  EXPECT_DOUBLE_EQ(cap("CAL", "CHI"), 5.0);

  // The transatlantic 20 ms tc delay sits on MIA-SAO.
  const auto delay = [&](const char* a, const char* b) {
    return topo.link(*topo.link_between(topo.index_of(a), topo.index_of(b)))
        .delay_ms;
  };
  EXPECT_DOUBLE_EQ(delay("MIA", "SAO"), 20.0);
  EXPECT_LT(delay("MIA", "CHI"), 20.0);

  // Tunnel 1 (MIA-SAO-AMS) is the high-latency path; tunnel 2
  // (MIA-CHI-AMS) the low-latency one -- the experiment 1 contrast.
  const Path t1 = topo.path_through({"MIA", "SAO", "AMS"});
  const Path t2 = topo.path_through({"MIA", "CHI", "AMS"});
  EXPECT_GT(topo.path_delay_ms(t1), topo.path_delay_ms(t2) + 10.0);
}

}  // namespace
}  // namespace hp::netsim
