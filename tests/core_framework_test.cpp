// Integration tests: PolkaService + Controller + FrameworkRuntime on the
// Fig 9 topology, reproducing the shapes of experiments 1 and 2.

#include <gtest/gtest.h>

#include "core/runtime.hpp"

namespace hp::core {
namespace {

using hp::freertr::parse_ipv4;

FlowRequest make_request(const std::string& name, unsigned tos,
                         double demand = 1e18) {
  FlowRequest request;
  request.name = name;
  request.acl_name = name;
  request.src_ip = parse_ipv4("40.40.1.2");
  request.dst_ip = parse_ipv4("40.40.2.2");
  request.tos = tos;
  request.demand_mbps = demand;
  return request;
}

TEST(PolkaService, TunnelsGetVerifiableRouteIds) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& polka = runtime.polka();
  ASSERT_EQ(polka.tunnels().size(), 3U);
  // verify_tunnel already ran in the constructor; re-verify and check
  // the mod-operation count equals the hop count.
  EXPECT_EQ(polka.verify_tunnel(1), 3U);  // MIA, SAO, AMS
  EXPECT_EQ(polka.verify_tunnel(2), 3U);
  EXPECT_EQ(polka.verify_tunnel(3), 4U);  // MIA, CAL, CHI, AMS
  EXPECT_THROW((void)polka.tunnel(9), std::out_of_range);
}

TEST(PolkaService, EdgeConfigMirrorsTunnels) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  const auto& config = runtime.edge().config();
  ASSERT_NE(config.find_tunnel(1), nullptr);
  EXPECT_EQ(config.find_tunnel(1)->domain_path,
            (std::vector<std::string>{"MIA", "SAO", "AMS"}));
  EXPECT_EQ(config.find_tunnel(3)->domain_path,
            (std::vector<std::string>{"MIA", "CAL", "CHI", "AMS"}));
}

TEST(PolkaService, HostToHostPathConnects) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  const auto path = runtime.polka().host_to_host_path(2, "host1", "host2");
  EXPECT_TRUE(runtime.simulator().topology().is_connected_path(path));
  EXPECT_EQ(path.size(), 4U);  // host1-MIA, MIA-CHI, CHI-AMS, AMS-host2
}

TEST(Controller, MinLatencyPicksTunnel2) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  // Tunnel 2 (MIA-CHI-AMS) has no 20 ms transatlantic hop.
  EXPECT_EQ(runtime.controller().choose_tunnel(Objective::kMinLatency), 2U);
}

TEST(Controller, FirstConfiguredIsTunnel1) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  EXPECT_EQ(runtime.controller().choose_tunnel(Objective::kFirstConfigured),
            1U);
}

TEST(Controller, NewFlowProgramsEdgeAndSimulator) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  const auto index = runtime.controller().handle_new_flow(
      make_request("flow1", 1), 0.0, Objective::kFirstConfigured);
  runtime.simulator().run_until(5.0);
  const ManagedFlow& flow = runtime.controller().managed(index);
  EXPECT_EQ(flow.tunnel_id, 1U);
  // Edge got the ACL and PBR.
  EXPECT_NE(runtime.edge().config().find_access_list("flow1"), nullptr);
  EXPECT_EQ(runtime.edge().config().find_pbr("flow1")->tunnel_id, 1U);
  // The flow runs at tunnel 1's bottleneck.
  EXPECT_NEAR(runtime.simulator().current_rate(flow.sim_flow), 20.0, 1e-6);
}

TEST(Controller, SchedulerDrainsInOrder) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  runtime.scheduler().submit(make_request("f1", 1));
  runtime.scheduler().submit(make_request("f2", 2));
  EXPECT_EQ(runtime.scheduler().pending_count(), 2U);
  const auto admitted =
      runtime.admit_pending(0.0, Objective::kFirstConfigured);
  EXPECT_EQ(admitted.size(), 2U);
  EXPECT_TRUE(runtime.scheduler().empty());
  EXPECT_EQ(runtime.controller().managed(admitted[0]).request.name, "f1");
}

TEST(Experiment1, LatencyMigrationShape) {
  // Phase (i): arbitrary allocation on tunnel 1 (high latency);
  // phase (ii): optimizer migrates to tunnel 2; RTT steps down.
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  const auto index = runtime.controller().handle_new_flow(
      make_request("ping", 0, 0.5), 0.0, Objective::kFirstConfigured);
  const auto flow = runtime.controller().managed(index).sim_flow;
  sim.schedule_probes("ping", runtime.polka().tunnel(1).netsim_path, 0.0,
                      1.0);
  sim.run_until(60.0);
  const double rtt_before =
      sim.path_rtt_ms(sim.flow_path(flow));
  const unsigned chosen =
      runtime.controller().reoptimize(index, 60.0, Objective::kMinLatency);
  sim.run_until(120.0);
  const double rtt_after = sim.path_rtt_ms(sim.flow_path(flow));
  EXPECT_EQ(chosen, 2U);
  EXPECT_GT(rtt_before, 40.0);
  EXPECT_LT(rtt_after, 15.0);
  // Edge PBR now points at tunnel 2 -- the single-entry migration.
  EXPECT_EQ(runtime.edge().config().find_pbr("ping")->tunnel_id, 2U);
}

TEST(Experiment2, FlowAggregationShape) {
  // Three ToS-tagged TCP flows all start on tunnel 1 (total <= 20);
  // reactive re-optimization spreads them over tunnels 2 and 3, total
  // rises toward 20 + 10 + 5.
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  auto& sim = runtime.simulator();
  std::vector<std::size_t> flows;
  for (unsigned tos = 1; tos <= 3; ++tos) {
    flows.push_back(runtime.controller().handle_new_flow(
        make_request("flow" + std::to_string(tos), tos), 0.0,
        Objective::kFirstConfigured));
  }
  sim.run_until(60.0);
  double total_before = 0.0;
  for (const auto f : flows) {
    total_before += sim.current_rate(runtime.controller().managed(f).sim_flow);
  }
  EXPECT_NEAR(total_before, 20.0, 1e-6);

  // Reactive migration using fresh telemetry, one flow at a time.
  runtime.controller().reoptimize(flows[1], 60.0,
                                  Objective::kCurrentBandwidth);
  sim.run_until(65.0);  // let telemetry observe the new state
  runtime.controller().reoptimize(flows[2], 65.0,
                                  Objective::kCurrentBandwidth);
  sim.run_until(120.0);

  double total_after = 0.0;
  for (const auto f : flows) {
    total_after += sim.current_rate(runtime.controller().managed(f).sim_flow);
  }
  EXPECT_GT(total_after, total_before + 9.0);  // ~35 in the fluid model
  // The three flows sit on three distinct tunnels now.
  std::set<unsigned> tunnels;
  for (const auto f : flows) {
    tunnels.insert(runtime.controller().managed(f).tunnel_id);
  }
  EXPECT_EQ(tunnels.size(), 3U);
}

TEST(Framework, HecateTrainsFromTelemetryAndRecommends) {
  HecateConfig config;
  config.model = "LR";
  config.history = 5;
  config.horizon = 3;
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab(config);
  auto& sim = runtime.simulator();
  // Load tunnel 1 with a demand-limited flow so its availability drops.
  const auto index = runtime.controller().handle_new_flow(
      make_request("bg", 1, 15.0), 0.0, Objective::kFirstConfigured);
  (void)index;
  sim.run_until(60.0);
  EXPECT_EQ(runtime.train_hecate_from_telemetry(), 3U);
  // Tunnel 1 availability ~5, tunnel 2 ~10, tunnel 3 ~5: Hecate must
  // not pick tunnel 1.
  const unsigned chosen =
      runtime.controller().choose_tunnel(Objective::kPredictedBandwidth);
  EXPECT_EQ(chosen, 2U);
}

TEST(Framework, PredictiveFallsBackBeforeTraining) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  runtime.simulator().run_until(5.0);
  // Untrained Hecate: kPredictedBandwidth degrades to the reactive
  // choice instead of failing.
  EXPECT_NO_THROW(
      (void)runtime.controller().choose_tunnel(Objective::kPredictedBandwidth));
}

TEST(Framework, DashboardRendersOccupation) {
  FrameworkRuntime runtime = FrameworkRuntime::global_p4_lab();
  runtime.controller().handle_new_flow(make_request("f", 1), 0.0,
                                       Objective::kFirstConfigured);
  runtime.simulator().run_until(10.0);
  const std::string report = runtime.dashboard().link_occupation_report();
  EXPECT_NE(report.find("MIA"), std::string::npos);
  EXPECT_NE(report.find("Mbps"), std::string::npos);
  EXPECT_NE(report.find('#'), std::string::npos);
}

}  // namespace
}  // namespace hp::core
