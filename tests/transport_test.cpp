// Closed-loop transport tests.  The contracts under test:
//  - RTO semantics on a dead wire: exponential backoff doubling, the
//    rto_max cap, and max-retries abandonment (graceful degradation);
//  - delivery semantics on a healthy wire: the flow completes with no
//    retransmissions and full goodput;
//  - option validation (HP_CHECK contract violations);
//  - determinism through SimRunner: fixed seed => bit-identical
//    SimReport across runs and compile_threads, with retransmits and a
//    flap failure schedule active, and the liveness invariant
//    completed_flows + abandoned_flows == flows.

#include "sim/transport.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/contracts.hpp"
#include "netsim/topology.hpp"
#include "scenario/fabric_builder.hpp"
#include "scenario/failure_injector.hpp"
#include "scenario/registry.hpp"
#include "sim/packet_sim.hpp"
#include "sim/runner.hpp"

namespace scenario = hp::scenario;
namespace sim = hp::sim;

namespace {

constexpr std::uint64_t kPacketBytes = 1000;

/// Two routers, one duplex 100 Mbps / 0.01 ms link, wired into a
/// PacketSim exactly as SimRunner wires channels.  `wire_down` takes
/// both directions down at tick 0, so every injection is a silent
/// failover loss and only the RTO can recover.
struct Rig {
  scenario::BuiltFabric fabric;
  std::optional<sim::PacketSim> sim;
  sim::RouteEpoch epoch;       ///< base a->b route, from = 0
  std::uint32_t source = 0;    ///< fabric index of router a

  explicit Rig(bool wire_down) : fabric(make_topo()) {
    const auto& fast = fabric.compiled();
    const auto& topo = fabric.topology();
    const std::size_t n = fast.node_count();
    std::vector<std::uint32_t> node_offset(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      node_offset[i + 1] = node_offset[i] + fast.port_count(i);
    }
    std::vector<std::uint32_t> port_channel(node_offset[n],
                                            sim::PacketSim::kNoChannel);
    std::vector<sim::Channel> channels;
    for (std::size_t node = 0; node < n; ++node) {
      for (std::uint32_t port = 0; port < fast.port_count(node); ++port) {
        const std::uint32_t peer = fast.neighbor(node, port);
        if (peer == hp::polka::CompiledFabric::kNoNode) continue;
        const auto link = topo.link_between(fabric.topo_index(node),
                                            fabric.topo_index(peer));
        if (!link.has_value()) {
          throw std::logic_error("Rig: fabric wiring names a missing link");
        }
        const hp::netsim::Link& l = topo.link(*link);
        sim::Channel ch;
        ch.latency_ns = static_cast<sim::Tick>(
            std::llround(std::max(l.delay_ms, 0.0) * 1e6));
        const double bits = static_cast<double>(kPacketBytes) * 8.0;
        ch.serialize_ns =
            static_cast<sim::Tick>(std::llround(bits * 1000.0 /
                                                l.capacity_mbps));
        ch.queue_capacity = 16;
        ch.ecn_threshold = 0;  // marking off: these tests pin RTO/drop paths
        port_channel[node_offset[node] + port] =
            static_cast<std::uint32_t>(channels.size());
        channels.push_back(ch);
      }
    }
    const std::size_t channel_count = channels.size();
    sim.emplace(fast, std::move(channels), std::move(node_offset),
                std::move(port_channel), sim::SimConfig{});
    if (wire_down) {
      for (std::size_t ch = 0; ch < channel_count; ++ch) {
        sim->schedule_link_state(0, static_cast<std::uint32_t>(ch), false);
      }
    }
    const scenario::CompiledRoute* route = fabric.route(0, 1);
    if (route == nullptr) {
      throw std::logic_error("Rig: a->b route failed to compile");
    }
    epoch.from = 0;
    epoch.label = route->segments.labels.front();
    epoch.ref = {};  // one hop: single label, no pooled segments
    epoch.expected = route->expected;
    source = route->ingress;
  }

 private:
  static hp::netsim::Topology make_topo() {
    hp::netsim::Topology topo;
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    topo.add_duplex_link(a, b, /*capacity_mbps=*/100.0, /*delay_ms=*/0.01);
    return topo;
  }
};

TEST(Transport, RtoBackoffDoublesCapsAndAbandons) {
  Rig rig(/*wire_down=*/true);
  sim::TransportOptions options;
  options.init_cwnd = 1;
  options.max_cwnd = 4;
  options.rto_min_ns = 1'000;
  options.rto_max_ns = 8'000;  // = rto_min * 2^3, so backoff hits the cap
  options.max_retries = 4;
  sim::Transport tp(*rig.sim, options, kPacketBytes, nullptr);
  const std::uint32_t lane = tp.add_lane({rig.epoch});
  (void)tp.add_flow(lane, rig.source, /*start=*/0, /*pace_ns=*/1,
                    /*packets=*/1);
  tp.arm();
  (void)rig.sim->run();

  const sim::Transport::FlowView view = tp.flow_view(0);
  EXPECT_TRUE(view.abandoned);
  EXPECT_FALSE(view.completed);
  EXPECT_EQ(view.delivered, 0u);
  // max_retries retransmissions burn max_retries + 1 timeouts: the
  // original send and each retry all time out before the give-up.
  EXPECT_EQ(view.timeouts, options.max_retries + 1);
  // Expiries at 1000, 3000, 7000, 15000, 23000: gaps 2000, 4000 double
  // from the rto_min base, then 8000, 8000 pin the rto_max cap.
  EXPECT_EQ(view.timeout_at,
            (std::vector<sim::Tick>{1'000, 3'000, 7'000, 15'000, 23'000}));

  const sim::TransportReport& report = tp.report();
  EXPECT_EQ(report.retransmits, options.max_retries);
  EXPECT_EQ(report.timeouts, options.max_retries + 1);
  EXPECT_EQ(report.abandoned_flows, 1u);
  EXPECT_EQ(report.goodput_bytes, 0u);
  EXPECT_EQ(report.offered_bytes, kPacketBytes);
  EXPECT_EQ(tp.completed_flows(), 0u);
}

TEST(Transport, HealthyWireCompletesWithoutRetransmission) {
  Rig rig(/*wire_down=*/false);
  sim::TransportOptions options;
  options.init_cwnd = 4;
  options.max_cwnd = 8;
  options.rto_min_ns = 1'000'000;  // far above the ~90 us path RTT
  sim::Transport tp(*rig.sim, options, kPacketBytes, nullptr);
  const std::uint32_t lane = tp.add_lane({rig.epoch});
  (void)tp.add_flow(lane, rig.source, /*start=*/0, /*pace_ns=*/100,
                    /*packets=*/8);
  tp.arm();
  (void)rig.sim->run();

  const sim::Transport::FlowView view = tp.flow_view(0);
  EXPECT_TRUE(view.completed);
  EXPECT_FALSE(view.abandoned);
  EXPECT_EQ(view.delivered, 8u);
  EXPECT_GT(view.fct_ns, 0u);
  EXPECT_EQ(view.timeouts, 0u);

  const sim::TransportReport& report = tp.report();
  EXPECT_EQ(report.packets_sent, 8u);
  EXPECT_EQ(report.retransmits, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.goodput_bytes, 8 * kPacketBytes);
  EXPECT_EQ(report.goodput_bytes, report.offered_bytes);
  EXPECT_EQ(tp.completed_flows(), 1u);
}

TEST(Transport, ConstructorRejectsIncoherentOptions) {
  Rig rig(/*wire_down=*/false);
  const auto reject = [&](sim::TransportOptions options) {
    EXPECT_THROW(
        sim::Transport(*rig.sim, options, kPacketBytes, nullptr),
        hp::core::ContractViolation);
  };
  sim::TransportOptions options;
  options.init_cwnd = 0;
  reject(options);
  options = {};
  options.max_cwnd = options.init_cwnd - 1;
  reject(options);
  options = {};
  options.rto_min_ns = 0;
  reject(options);
  options = {};
  options.rto_max_ns = options.rto_min_ns - 1;
  reject(options);
  options = {};
  options.max_retries = 0;
  reject(options);
}

/// Incast knobs aggressive enough that the closed loop must retransmit
/// (shallow queues, fast sources piling onto one hot destination) on
/// top of a flapping-link failure schedule.
sim::SimOptions closed_loop_incast_options(const scenario::ScenarioSpec& spec) {
  sim::SimOptions options;
  options.source_rate_mbps = 400.0;
  options.flow_gap_ns = 10'000;
  options.queue_capacity = 16;
  options.ecn_threshold = 12;
  options.protection_k = 1;
  options.transport.enabled = true;
  options.transport.init_cwnd = 4;
  options.transport.max_cwnd = 32;
  // Above the queueing-dominated incast RTT, so timeouts mean real
  // silent loss (dead wires), not spurious expiry.
  options.transport.rto_min_ns = 4'000'000;
  options.transport.rto_max_ns = 50'000'000;
  options.transport.max_retries = 8;

  scenario::FailureInjectorParams failures;
  failures.preset = scenario::FailurePreset::kFlap;
  failures.seed = 17;
  failures.count = 2;
  failures.mean_up_fraction = 0.15;
  failures.mean_down_fraction = 0.05;
  options.failures = scenario::make_failure_schedule(
      scenario::build_topology(spec), failures);
  return options;
}

TEST(TransportRunner, FixedSeedBitIdenticalAcrossRunsAndThreadsUnderFlap) {
  const scenario::ScenarioSpec* base =
      scenario::find_scenario("torus4x4/hotspot");
  ASSERT_NE(base, nullptr);
  scenario::ScenarioSpec spec = *base;
  spec.traffic.pattern = scenario::TrafficPattern::kHotspot;
  spec.traffic.packets = 2048;
  spec.traffic.max_pairs = 64;
  spec.traffic.seed = 5;
  const sim::SimOptions options = closed_loop_incast_options(spec);

  const sim::SimReport first = sim::run_sim_scenario(spec, options);
  EXPECT_TRUE(first.transport.enabled);
  EXPECT_GT(first.transport.retransmits, 0u)
      << "incast + flap must force retransmissions for this test to bite";
  EXPECT_GT(first.transport.timeouts, 0u);
  // Liveness: every flow either delivered all its bytes or was
  // abandoned after max_retries -- nothing hangs in between.
  EXPECT_EQ(first.completed_flows + first.transport.abandoned_flows,
            first.flows);
  EXPECT_EQ(first.forwarding.wrong_egress, 0u);

  const sim::SimReport again = sim::run_sim_scenario(spec, options);
  EXPECT_EQ(first, again) << "same seed, same options: closed-loop report "
                             "must be bit-identical across runs";
  for (const unsigned threads : {2u, 4u}) {
    sim::SimOptions threaded = options;
    threaded.compile_threads = threads;
    const sim::SimReport report = sim::run_sim_scenario(spec, threaded);
    EXPECT_EQ(first, report)
        << "compile_threads=" << threads << " changed the closed-loop report";
  }
}

}  // namespace
